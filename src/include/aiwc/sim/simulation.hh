/**
 * @file
 * Simulation clock and run loop, wrapping the event queue with a
 * monotone notion of "now" that every component reads.
 */

#pragma once

#include <functional>

#include "aiwc/common/types.hh"
#include "aiwc/sim/event_queue.hh"

namespace aiwc::sim
{

/**
 * The simulation driver: owns the clock and the event queue, and runs
 * events in order until the queue drains or a horizon is reached.
 */
class Simulation
{
  public:
    /** Current simulation time in seconds. */
    Seconds now() const { return now_; }

    /** Schedule a callback at an absolute time >= now(). */
    EventId at(Seconds when, std::function<void()> callback);

    /** Schedule a callback `delay` seconds from now (delay >= 0). */
    EventId after(Seconds delay, std::function<void()> callback);

    /** Cancel a scheduled event; no-op on unknown/fired ids. */
    bool cancel(EventId id) { return events_.cancel(id); }

    /**
     * Run until the queue is empty. @return number of events fired.
     */
    std::size_t run();

    /**
     * Run until the queue is empty or the next event is past the
     * horizon; the clock is left at min(horizon, last event time).
     * @return number of events fired.
     */
    std::size_t runUntil(Seconds horizon);

    /** Events still pending. */
    std::size_t pendingEvents() const { return events_.size(); }

  private:
    EventQueue events_;
    Seconds now_ = 0.0;
};

} // namespace aiwc::sim

