/**
 * @file
 * The cluster resource model: GPUs, nodes, and the cluster itself,
 * mirroring the Supercloud topology of Table I (224 dual-socket Xeon
 * 6248 nodes, 2 V100-32GB GPUs each, 384 GB node RAM).
 *
 * Allocation state lives here; policy lives in aiwc::sched. A node
 * hands out CPU hyperthread slots, RAM gigabytes, and whole GPUs; the
 * Supercloud never co-locates jobs on the same GPU (Sec. III), so GPUs
 * are exclusive.
 */

#pragma once

#include <string>
#include <vector>

#include "aiwc/common/types.hh"

namespace aiwc::sim
{

/** Static description of one GPU model. */
struct GpuSpec
{
    std::string model = "V100";
    double memory_gb = 32.0;
    double tdp_watts = 300.0;
    double idle_watts = 25.0;
    /**
     * Relative throughput against the V100 baseline — used by the
     * multi-tier planner when mixing GPU generations (Sec. VIII).
     */
    double relative_speed = 1.0;
};

/** Static description of one node. */
struct NodeSpec
{
    int sockets = 2;
    int cores_per_socket = 20;
    int hyperthreads_per_core = 2;
    double ram_gb = 384.0;
    int gpus = 2;
    GpuSpec gpu;
    double local_ssd_tb = 1.0;
    double local_hdd_tb = 3.8;

    /** Schedulable CPU slots (hyperthreads). */
    int cpuSlots() const
    {
        return sockets * cores_per_socket * hyperthreads_per_core;
    }
};

/** Static description of the whole system (Table I). */
struct ClusterSpec
{
    std::string name = "Supercloud";
    int nodes = 224;
    NodeSpec node;
    double shared_ssd_tb = 873.0;
    std::string interconnect = "100 Gb/s Omnipath two-layer partial fat-tree";
    std::string network = "25 Gb/s Ethernet CX-4";

    int totalGpus() const { return nodes * node.gpus; }
    int totalCpuCores() const
    {
        return nodes * node.sockets * node.cores_per_socket;
    }
};

/** Runtime allocation state of one GPU. */
class Gpu
{
  public:
    Gpu(GpuId id, NodeId node, const GpuSpec &spec)
        : id_(id), node_(node), spec_(&spec) {}

    GpuId id() const { return id_; }
    NodeId node() const { return node_; }
    const GpuSpec &spec() const { return *spec_; }

    bool busy() const { return job_ != invalid_id; }
    JobId job() const { return job_; }

    /** Assign to a job; the GPU must be free and the job id valid. */
    void assign(JobId job);

    /** Release back to the free pool; the GPU must be busy. */
    void release();

    /** Contract-check this GPU's internal consistency. */
    void auditInvariants() const;

  private:
    GpuId id_;
    NodeId node_;
    const GpuSpec *spec_;
    JobId job_ = invalid_id;
};

/** Runtime allocation state of one node. */
class Node
{
  public:
    Node(NodeId id, const NodeSpec &spec, GpuId first_gpu_id);

    NodeId id() const { return id_; }
    const NodeSpec &spec() const { return *spec_; }

    int freeCpuSlots() const { return free_cpu_slots_; }
    double freeRamGb() const { return free_ram_gb_; }
    int freeGpus() const;

    const std::vector<Gpu> &gpus() const { return gpus_; }
    std::vector<Gpu> &gpus() { return gpus_; }

    /** True when the node can host this CPU/RAM request right now. */
    bool fitsCpu(int cpu_slots, double ram_gb) const;

    /** Claim CPU slots and RAM for a job; must fit. */
    void allocateCpu(int cpu_slots, double ram_gb);

    /** Return CPU slots and RAM. */
    void releaseCpu(int cpu_slots, double ram_gb);

    /** Claim `count` free GPUs for a job; returns their global ids. */
    std::vector<GpuId> allocateGpus(JobId job, int count);

    /** Release one of this node's GPUs by global id. */
    void releaseGpu(GpuId gpu);

    /** Number of distinct jobs currently holding CPU slots here. */
    int residentJobs() const { return resident_jobs_; }

    /**
     * Deep audit of this node's conservation invariants: free slots and
     * RAM within [0, capacity], GPU count and ownership ids intact, and
     * an empty node (no resident jobs) holding no busy GPUs at exactly
     * its rated capacity. Any violation fails an AIWC_CHECK.
     */
    void auditInvariants() const;

  private:
    NodeId id_;
    const NodeSpec *spec_;
    int free_cpu_slots_;
    double free_ram_gb_;
    std::vector<Gpu> gpus_;
    int resident_jobs_ = 0;
};

/**
 * The cluster: owns all nodes and exposes capacity queries used by the
 * scheduler's placement pass.
 */
class Cluster
{
  public:
    explicit Cluster(const ClusterSpec &spec);

    const ClusterSpec &spec() const { return spec_; }

    std::size_t numNodes() const { return nodes_.size(); }
    Node &node(NodeId id);
    const Node &node(NodeId id) const;
    std::vector<Node> &nodes() { return nodes_; }
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Total free GPUs across the cluster. */
    int freeGpus() const;

    /** Total free CPU slots across the cluster. */
    int freeCpuSlots() const;

    /** Node owning a global GPU id. */
    NodeId nodeOfGpu(GpuId gpu) const;

    /** The GPU with a global id; the id must be in range. */
    const Gpu &gpu(GpuId id) const;

    /**
     * Deep audit of cluster-wide conservation: every node's own
     * invariants, the global GPU id <-> node mapping, and agreement
     * between per-node free counts and the cluster aggregates.
     */
    void auditInvariants() const;

  private:
    ClusterSpec spec_;
    std::vector<Node> nodes_;
};

} // namespace aiwc::sim

