/**
 * @file
 * Canned cluster configurations: the Supercloud system of Table I, a
 * scaled-down variant for fast tests, and the multi-tier fleet the
 * paper recommends in Sec. VIII.
 */

#pragma once

#include <cstddef>
#include <ostream>

#include "aiwc/sim/resources.hh"

namespace aiwc::sim
{

/**
 * One row of the machine-class catalog: every constant needed to build
 * a homogeneous ClusterSpec, hoisted out of code so the Table-I system
 * is just the first entry and new machine classes are data, not code.
 * Plain `const char *` + arithmetic fields keep the table constexpr.
 */
struct MachineSpec
{
    const char *name;
    int nodes;
    int sockets;
    int cores_per_socket;
    int hyperthreads_per_core;
    double ram_gb;
    int gpus;
    const char *gpu_model;
    double gpu_memory_gb;
    double gpu_tdp_watts;
    double gpu_idle_watts;
    double gpu_relative_speed;
    double local_ssd_tb;
    double local_hdd_tb;
    double shared_ssd_tb;
};

/**
 * The built-in machine-class catalog. Entry 0 is the exact Table-I
 * Supercloud row; later entries are the cheaper tiers the Sec. VIII
 * recommendations reason about.
 */
const MachineSpec *machineSpecTable();

/** Number of rows in machineSpecTable(). */
std::size_t machineSpecCount();

/** Expand one catalog row into a homogeneous ClusterSpec. */
ClusterSpec clusterSpecFrom(const MachineSpec &machine);

/** The exact Table-I Supercloud configuration (catalog row 0). */
ClusterSpec supercloudSpec();

/**
 * A proportionally shrunk Supercloud (same node shape, fewer nodes)
 * for unit tests and quick examples. @param nodes >= 1.
 */
ClusterSpec miniSupercloudSpec(int nodes);

/**
 * A slower/cheaper "exploration tier" GPU, standing in for the
 * less-expensive GPUs the multi-tier recommendation would add.
 * @param relative_speed throughput vs. the V100 (0 < s <= 1).
 */
GpuSpec economyGpuSpec(double relative_speed = 0.5);

/** Render the spec as the Table-I style spec sheet. */
void printSpec(const ClusterSpec &spec, std::ostream &os);

} // namespace aiwc::sim

