/**
 * @file
 * Canned cluster configurations: the Supercloud system of Table I, a
 * scaled-down variant for fast tests, and the multi-tier fleet the
 * paper recommends in Sec. VIII.
 */

#pragma once

#include <ostream>

#include "aiwc/sim/resources.hh"

namespace aiwc::sim
{

/** The exact Table-I Supercloud configuration. */
ClusterSpec supercloudSpec();

/**
 * A proportionally shrunk Supercloud (same node shape, fewer nodes)
 * for unit tests and quick examples. @param nodes >= 1.
 */
ClusterSpec miniSupercloudSpec(int nodes);

/**
 * A slower/cheaper "exploration tier" GPU, standing in for the
 * less-expensive GPUs the multi-tier recommendation would add.
 * @param relative_speed throughput vs. the V100 (0 < s <= 1).
 */
GpuSpec economyGpuSpec(double relative_speed = 0.5);

/** Render the spec as the Table-I style spec sheet. */
void printSpec(const ClusterSpec &spec, std::ostream &os);

} // namespace aiwc::sim

