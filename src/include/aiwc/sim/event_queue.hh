/**
 * @file
 * Discrete-event queue: the heartbeat of the cluster simulator.
 *
 * Events carry an owning callback and fire in (time, sequence) order so
 * simultaneous events execute in scheduling order, which keeps the
 * whole 125-day replay deterministic.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "aiwc/common/types.hh"

namespace aiwc::sim
{

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * A min-heap of timed callbacks with O(1) lazy cancellation: cancelled
 * ids are remembered and skipped on pop, so cancellation never
 * restructures the heap (cheap for the scheduler's frequent
 * timeout-then-finish-early pattern).
 */
class EventQueue
{
  public:
    /** Schedule a callback at an absolute time; returns its handle. */
    EventId schedule(Seconds when, std::function<void()> callback);

    /**
     * Cancel a previously scheduled event. Cancelling an already-fired
     * or unknown id is a no-op (returns false).
     */
    bool cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const;

    /** Time of the earliest live event; requires !empty(). */
    Seconds nextTime() const;

    /**
     * Pop and run the earliest live event.
     * @return the time the event fired at.
     */
    Seconds popAndRun();

    /** Number of live (uncancelled) events. */
    std::size_t size() const { return live_; }

  private:
    struct Entry
    {
        Seconds when;
        std::uint64_t seq;
        EventId id;
        // Heap entries are copied around; keep the callback on the
        // side so moves stay cheap.
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled entries off the top of the heap. */
    void skipDead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    mutable std::unordered_set<EventId> cancelled_;
    std::unordered_map<EventId, std::function<void()>> callbacks_;
    EventId next_id_ = 1;
    std::uint64_t next_seq_ = 0;
    std::size_t live_ = 0;
};

} // namespace aiwc::sim

