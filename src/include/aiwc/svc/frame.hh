/**
 * @file
 * The service's wire format: length-prefixed binary frames carrying
 * JobRecord batches from tenant collectors to the characterization
 * daemon. This is the boundary where untrusted bytes become typed
 * records, so the decoder is strict: versioned fixed-size header,
 * CRC-32 over the payload, and bounds-checked field reads that reject
 * malformed input with a status code — never an abort, never a read
 * past the buffer. A daemon fed garbage drops the frame and keeps
 * serving (the malformed-frame fuzz suite pins this down).
 *
 * Layout (all integers little-endian):
 *
 *   offset  size  field
 *        0     4  magic 0x43574941 ("AIWC")
 *        4     2  version (frame_version; other values -> VersionSkew)
 *        6     2  frame type (FrameType)
 *        8     8  tenant id
 *       16     4  payload length in bytes (<= max_frame_payload)
 *       20     4  CRC-32 (IEEE) of the payload bytes
 *       24     n  payload
 *
 * A JobBatch payload is a u32 record count followed by that many
 * serialized JobRecords (fixed scalar fields, then the per-GPU
 * summaries as reconstructable moments, then optional phase stats).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "aiwc/core/job_record.hh"

namespace aiwc::svc
{

/** "AIWC" read little-endian. */
inline constexpr std::uint32_t frame_magic = 0x43574941u;

/** Current wire version; bump on any layout change. */
inline constexpr std::uint16_t frame_version = 1;

/** Fixed header size in bytes. */
inline constexpr std::size_t frame_header_bytes = 24;

/**
 * Hard payload ceiling. Anything larger is rejected before allocation:
 * a corrupt or hostile length prefix must not become an OOM.
 */
inline constexpr std::size_t max_frame_payload = 64u << 20;

/** Frame kinds carried on the wire. */
enum class FrameType : std::uint16_t
{
    JobBatch = 1,
};

/** Decode outcome; everything but Ok/NeedMoreData rejects the frame. */
enum class DecodeStatus : std::uint8_t
{
    Ok,
    /** Buffer ends before the header or the declared payload does. */
    NeedMoreData,
    BadMagic,       //!< resync required; consumed stays 0
    VersionSkew,    //!< well-formed frame from a different version
    BadType,        //!< unknown FrameType
    Oversized,      //!< payload length exceeds max_frame_payload
    BadCrc,         //!< payload checksum mismatch
    Malformed,      //!< payload structure/bounds/enum-range violation
};

const char *toString(DecodeStatus status);

/**
 * Result of one decode attempt. `consumed` is how many input bytes the
 * caller should drop: header + payload for every parsed frame (good or
 * rejected), 0 when more bytes are needed or the stream cannot be
 * trusted past the header (BadMagic, Oversized) and the caller must
 * resynchronize or drop the connection.
 */
struct DecodedFrame
{
    DecodeStatus status = DecodeStatus::NeedMoreData;
    std::size_t consumed = 0;
    std::uint64_t tenant = 0;
    std::vector<core::JobRecord> records;

    bool ok() const { return status == DecodeStatus::Ok; }
};

/** Encode one JobBatch frame for @p tenant. */
std::vector<std::uint8_t> encodeJobBatch(
    std::uint64_t tenant, std::span<const core::JobRecord> records);

/**
 * Decode the first frame in @p buffer. Never throws on malformed
 * input and never reads outside @p buffer; see DecodedFrame for the
 * consumption contract.
 */
DecodedFrame decodeFrame(std::span<const std::uint8_t> buffer);

/** CRC-32 (IEEE 802.3 polynomial), exposed for tests and tooling. */
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

} // namespace aiwc::svc
