/**
 * @file
 * The multi-tenant streaming characterization service: one sharded
 * StreamPipeline per tenant behind a frame-decoding front door. This
 * is the daemon shape of the ROADMAP north star — many clusters
 * (tenants) feed JobRecord batches over the wire, and operators pull
 * live SnapshotReports mid-stream without quiescing ingest.
 *
 * Threading model (lock order: registry -> tenant -> pipeline):
 *
 *  - offerFrame()/enqueueBatch() append to the tenant's bounded queue
 *    under the tenant mutex; when the queue already holds more than
 *    ServiceOptions::queue_budget_records the batch is refused with
 *    Admission::Backpressure (an empty queue always admits, so a
 *    single oversized batch cannot wedge a tenant forever).
 *  - drain() moves queued batches into the tenant's shard pipelines,
 *    fanning across tenants with parallelFor. Records route to shard
 *    `user % shards_per_tenant` — a pure function of the record,
 *    never of the thread count or arrival interleaving, so the
 *    post-drain state (and every snapshot digest) is byte-identical
 *    at 1 or 8 drain threads. User-keyed routing also pins each
 *    user's per-user accumulator to one shard, keeping the tenant's
 *    total user-table footprint O(users) instead of
 *    O(users x shards).
 *  - snapshot() merges the tenant's shards in shard-index order
 *    (stream::snapshotShards) under the tenant mutex, so a snapshot
 *    is batch-atomic: it observes whole drained batches, never a
 *    half-applied one.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "aiwc/base/mutex.hh"
#include "aiwc/base/thread_annotations.hh"
#include "aiwc/core/job_record.hh"
#include "aiwc/stream/pipeline.hh"
#include "aiwc/svc/frame.hh"

namespace aiwc::svc
{

/** Capacity and geometry knobs for the service. */
struct ServiceOptions
{
    /**
     * StreamPipeline shards per tenant. More shards raise drain
     * parallelism headroom and merge cost; the default suits the
     * study's per-cluster volumes. Must be >= 1 (AIWC_CHECK).
     */
    std::size_t shards_per_tenant = 4;

    /**
     * Backpressure threshold: a batch is refused when the tenant's
     * queue already holds more than this many records. An empty queue
     * always admits. Must be >= 1 (AIWC_CHECK).
     */
    std::size_t queue_budget_records = 65536;

    /** Sketch geometry shared by every tenant's shard pipelines. */
    stream::StreamOptions stream;
};

/** Outcome of offering a batch to a tenant's queue. */
enum class Admission : std::uint8_t
{
    Accepted,
    /** Queue over budget; the sender must retry after a drain. */
    Backpressure,
};

const char *toString(Admission a);

/** Outcome of offering one wire frame to the service. */
struct OfferResult
{
    /** Frame-level verdict; see DecodedFrame for `consumed`. */
    DecodeStatus decode = DecodeStatus::NeedMoreData;
    std::size_t consumed = 0;
    /** Queue verdict; meaningful only when decode == Ok. */
    Admission admission = Admission::Backpressure;
    std::uint64_t tenant = 0;
    /** Records admitted (0 unless accepted()). */
    std::size_t records = 0;

    bool
    accepted() const
    {
        return decode == DecodeStatus::Ok &&
               admission == Admission::Accepted;
    }
};

/**
 * The ingest daemon core. All public methods are thread-safe; see the
 * file comment for the locking model. Tenants are created on first
 * contact and live for the service's lifetime (the study's tenant
 * population is small and stable — clusters, not sessions).
 */
class Service
{
  public:
    explicit Service(ServiceOptions options = {});

    /**
     * Decode one frame and, when it parses, offer its batch to the
     * tenant's queue. Malformed bytes never throw or abort — the
     * returned OfferResult carries the decode verdict and the
     * consumption contract of decodeFrame().
     */
    OfferResult offerFrame(std::span<const std::uint8_t> buffer);

    /**
     * Offer an already-decoded batch (the in-process fast path the
     * demo uses). Moves from @p batch only when admitted.
     */
    Admission enqueueBatch(std::uint64_t tenant,
                           std::vector<core::JobRecord> &&batch);

    /**
     * Move every queued batch into the shard pipelines, fanning
     * across tenants on the global pool. @return records ingested.
     * Concurrent enqueues during a drain simply land in the queue for
     * the next drain; concurrent snapshots interleave at batch
     * boundaries.
     */
    std::size_t drain();

    /**
     * Merge-and-render the tenant's shards (stream::snapshotShards).
     * Batch-atomic with respect to drain(). The tenant must exist
     * (AIWC_CHECK) — probe with hasTenant() when unsure.
     */
    stream::SnapshotReport snapshot(std::uint64_t tenant) const;

    bool hasTenant(std::uint64_t tenant) const;

    /** All tenant ids, ascending. */
    std::vector<std::uint64_t> tenantIds() const;

    /** Records waiting in the tenant's queue (0 for unknown). */
    std::size_t queuedRecords(std::uint64_t tenant) const;

    /** Records drained into the tenant's pipelines (0 for unknown). */
    std::uint64_t ingestedRecords(std::uint64_t tenant) const;

    /** Sketch footprint summed over every tenant's shards, bytes. */
    std::size_t sketchBytes() const;

    const ServiceOptions &options() const { return options_; }

  private:
    struct Tenant
    {
        explicit Tenant(const ServiceOptions &options);

        /** Guards everything below; see file-comment lock order. */
        mutable Mutex mutex;
        std::deque<std::vector<core::JobRecord>> queue
            AIWC_GUARDED_BY(mutex);
        std::size_t queued_records AIWC_GUARDED_BY(mutex) = 0;
        std::uint64_t ingested AIWC_GUARDED_BY(mutex) = 0;
        /**
         * The vector's geometry is fixed at construction; the guarded
         * state is the shard *elements*, which additionally serialize
         * on their own pipeline mutexes (lock order: tenant before
         * pipeline, tools/aiwc-lint/locks.txt).
         */
        std::vector<stream::StreamPipeline> shards
            AIWC_GUARDED_BY(mutex);
    };

    /** Find-or-create; returns a pointer stable for the Service's life. */
    Tenant &tenantFor(std::uint64_t id);
    const Tenant *findTenant(std::uint64_t id) const;

    ServiceOptions options_;
    mutable Mutex registry_mutex_;
    /** std::map: tenant iteration order must be deterministic. */
    std::map<std::uint64_t, std::unique_ptr<Tenant>> tenants_
        AIWC_GUARDED_BY(registry_mutex_);
};

} // namespace aiwc::svc
