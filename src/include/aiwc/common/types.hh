/**
 * @file
 * Fundamental types shared across the aiwc library.
 *
 * The simulator uses double-precision seconds as its time base: the
 * telemetry substrate samples at 100 ms (paper Sec. II, "System
 * Monitoring"), the scheduler operates at second granularity, and the
 * study spans 125 days, all of which fit comfortably and exactly in a
 * double.
 */

#pragma once

#include <cstdint>
#include <string>

namespace aiwc
{

/** Simulation time in seconds since the start of the trace. */
using Seconds = double;

/** Identifier types. 32-bit is ample: the study has 74,820 jobs. */
using JobId = std::uint32_t;
using UserId = std::uint32_t;
using NodeId = std::uint32_t;

/** A GPU is addressed by (node, local index); this is its global id. */
using GpuId = std::uint32_t;

/** Sentinel for "no such id". */
inline constexpr std::uint32_t invalid_id = 0xffffffffu;

/** Convenient duration constants. */
inline constexpr Seconds one_minute = 60.0;
inline constexpr Seconds one_hour = 3600.0;
inline constexpr Seconds one_day = 86400.0;

/**
 * Submission interface of a job (paper Sec. III, Fig. 5). Map-reduce,
 * batch, and interactive jobs arrive through dedicated interfaces; all
 * remaining jobs (mostly deep learning) use the generic Slurm interface
 * and are labeled "other".
 */
enum class Interface : std::uint8_t
{
    MapReduce,
    Batch,
    Interactive,
    Other,
};

/** Number of Interface values, for array-of-enum indexing. */
inline constexpr int num_interfaces = 4;

/**
 * Lifecycle class of a job in the algorithm-development life-cycle
 * (paper Sec. VI, Fig. 2): IDE (design), development (determine resource
 * requirements), exploratory (hyper-parameter tuning, user-cancelled),
 * and mature (finalized code, exits 0).
 */
enum class Lifecycle : std::uint8_t
{
    Mature,
    Exploratory,
    Development,
    Ide,
};

/** Number of Lifecycle values, for array-of-enum indexing. */
inline constexpr int num_lifecycles = 4;

/**
 * Terminal state of a job as recorded by the scheduler. The lifecycle
 * classifier inverts this (plus the interface and runtime) into a
 * Lifecycle label, mirroring how the paper labels its four classes from
 * exit codes, user cancellations and timeouts.
 */
enum class TerminalState : std::uint8_t
{
    Completed,    //!< exit code 0
    Cancelled,    //!< killed by the user before completion
    Failed,       //!< nonzero exit code (crash during development)
    TimedOut,     //!< hit the requested wall-time limit
    NodeFailure,  //!< hardware failure (<0.5% of jobs per Sec. II)
};

/** Number of TerminalState values, for array-of-enum indexing. */
inline constexpr int num_terminal_states = 5;

/** Human-readable names, aligned with the enum order above. */
const char *toString(Interface i);
const char *toString(Lifecycle c);
const char *toString(TerminalState s);

/**
 * GPU telemetry resource axes reported by the nvidia-smi-style sampler
 * (paper Sec. II "General Methodology"): SM occupancy, memory bandwidth
 * ("memory utilization" in Nvidia terms), memory amount used, PCIe
 * transmit/receive bandwidth, and power draw.
 */
enum class Resource : std::uint8_t
{
    Sm,
    MemoryBw,
    MemorySize,
    PcieTx,
    PcieRx,
    Power,
};

inline constexpr int num_resources = 6;

const char *toString(Resource r);

/**
 * Service-level-agreement class of a job or task. Latency-sensitive
 * work must start (and finish) promptly; batch work tolerates queueing
 * up to a multiple of its expected runtime; scavenger work runs on
 * leftover capacity with no completion guarantee at all. The scenario
 * engine scores SLA violations per class, and the scheduler can
 * optionally boost priority by class (off by default).
 */
enum class SlaClass : std::uint8_t
{
    LatencySensitive,
    Batch,
    Scavenger,
};

/** Number of SlaClass values, for array-of-enum indexing. */
inline constexpr int num_sla_classes = 3;

/**
 * Coarse task-type taxonomy used by heterogeneous scenario mixes, after
 * the cloudsim-eec vocabulary: web serving, AI training/inference,
 * crypto-style batch compute, stream processing, and classic HPC.
 */
enum class TaskType : std::uint8_t
{
    Web,
    Ai,
    Crypto,
    Stream,
    Hpc,
};

/** Number of TaskType values, for array-of-enum indexing. */
inline constexpr int num_task_types = 5;

const char *toString(SlaClass c);
const char *toString(TaskType t);

} // namespace aiwc

