/**
 * @file
 * Fixed-size thread pool and deterministic data-parallel helpers.
 *
 * The characterization pipeline runs a dozen independent per-job and
 * per-user passes over 47k+ records; this module lets them scale with
 * core count without giving up the repository's bit-for-bit
 * reproducibility guarantee. The contract:
 *
 *  - Work is split into *shards* whose geometry depends only on the
 *    problem size (detail::shardRanges), never on the thread count.
 *  - parallelReduce() folds each shard into its own accumulator and
 *    merges the per-shard accumulators **in shard-index order**, so the
 *    floating-point evaluation order — and therefore every output bit —
 *    is identical whether the shards ran on 1 thread or 8.
 *  - No silent task-swallowing: an exception thrown inside a shard
 *    (including ContractViolation from a throwing AIWC_CHECK handler)
 *    is captured and rethrown on the calling thread; the first failing
 *    shard in index order wins.
 *
 * The global pool is sized from AIWC_THREADS (else the hardware
 * concurrency) and built lazily on first use; setGlobalThreadCount()
 * rebuilds it. Helpers invoked *from* a pool worker run their shards
 * inline on that worker, so nested parallelism cannot deadlock.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "aiwc/base/mutex.hh"
#include "aiwc/base/thread_annotations.hh"
#include "aiwc/obs/trace.hh"

namespace aiwc
{

/**
 * A fixed-size pool of worker threads consuming a shared task queue.
 * Tasks are plain thunks; ordering across workers is unspecified, so
 * determinism is the job of the helpers below, not of the pool.
 */
class ThreadPool
{
  public:
    /** @param threads worker count, >= 1. */
    explicit ThreadPool(int threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    int threads() const { return threads_; }

    /**
     * Enqueue one task. The task runs exactly once on some worker;
     * submit() never blocks on task completion. Exceptions must be
     * handled inside the task (the helpers below do this) — a task
     * that lets one escape takes the process down.
     */
    void submit(std::function<void()> task);

    /** True when the calling thread is a pool worker (any pool). */
    static bool onWorkerThread();

  private:
    void workerLoop();

    int threads_;
    std::vector<std::thread> workers_;
    Mutex mutex_;
    CondVar cv_;
    std::deque<std::function<void()>> queue_ AIWC_GUARDED_BY(mutex_);
    bool stop_ AIWC_GUARDED_BY(mutex_) = false;
    /** Workers currently inside a task (pool-occupancy metric). */
    std::atomic<int> active_{0};
};

/**
 * The process-wide pool the analyzers and the synthesizer share.
 * Built on first use with defaultThreadCount() workers.
 */
ThreadPool &globalPool();

/**
 * Resize the global pool. Must not be called while work is in flight
 * on the pool (it is a configuration-time knob: main(), bench setup,
 * test fixtures). @param threads >= 1; 1 disables parallel dispatch.
 */
void setGlobalThreadCount(int threads);

/** Worker count of the global pool (builds it if needed). */
int globalThreadCount();

/**
 * The pool size used when nothing was configured: AIWC_THREADS if set
 * (clamped to >= 1), else std::thread::hardware_concurrency().
 */
int defaultThreadCount();

namespace detail
{

/**
 * Upper bound on shards per helper call. Chosen large enough to load-
 * balance any realistic pool and small enough that per-shard
 * accumulators stay cheap. Part of the determinism contract: outputs
 * depend on this constant, never on the thread count.
 */
inline constexpr std::size_t default_shards = 64;

/** One contiguous index range [begin, end) with its merge position. */
struct ShardRange
{
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t index = 0;
};

/**
 * Split [0, n) into at most max_shards balanced contiguous ranges.
 * Pure function of (n, max_shards) — identical on every call, which
 * is what makes N-thread and 1-thread reductions bit-identical.
 */
std::vector<ShardRange> shardRanges(std::size_t n,
                                    std::size_t max_shards =
                                        default_shards);

/**
 * Cached registry handles for the shard hot path (defined in
 * parallel.cc so the template below stays header-only without paying a
 * registry lookup per shard).
 */
obs::Histogram &shardNsHistogram();
obs::Counter &shardsExecutedCounter();

/** Countdown latch for one batch of shard tasks. */
class TaskGroup
{
  public:
    explicit TaskGroup(std::size_t count) : remaining_(count) {}

    void
    done()
    {
        MutexLock lock(mutex_);
        if (--remaining_ == 0)
            cv_.notify_all();
    }

    void
    wait()
    {
        MutexLock lock(mutex_);
        // Explicit predicate re-check loop: the thread-safety analysis
        // sees the guarded read, and spurious wakeups stay harmless.
        while (remaining_ != 0)
            cv_.wait(mutex_);
    }

  private:
    Mutex mutex_;
    CondVar cv_;
    std::size_t remaining_ AIWC_GUARDED_BY(mutex_);
};

/**
 * Run one callable per shard, inline when the pool is serial (or when
 * already on a worker thread), otherwise fanned across the pool.
 * Rethrows the first (by shard index) escaped exception after all
 * shards finished — no partial waits, no swallowed failures.
 */
template <typename ShardFn>
void
runShards(ThreadPool &pool, const std::vector<ShardRange> &shards,
          ShardFn &&fn)
{
    if (shards.empty())
        return;
    shardsExecutedCounter().add(shards.size());
    if (pool.threads() <= 1 || shards.size() == 1 ||
        ThreadPool::onWorkerThread()) {
        for (const ShardRange &s : shards) {
            obs::ScopedTimer timer(shardNsHistogram(), "parallel.shard");
            fn(s);
        }
        return;
    }
    TaskGroup group(shards.size());
    std::vector<std::exception_ptr> errors(shards.size());
    for (const ShardRange &s : shards) {
        pool.submit([&fn, &group, &errors, s] {
            try {
                obs::ScopedTimer timer(shardNsHistogram(),
                                       "parallel.shard");
                fn(s);
            } catch (...) {
                errors[s.index] = std::current_exception();
            }
            group.done();
        });
    }
    group.wait();
    for (std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
}

} // namespace detail

/**
 * Apply fn(i) for every i in [0, n). Iteration order within a shard is
 * ascending; shards may run concurrently, so fn must only touch state
 * owned by index i (e.g. out[i] = ...).
 */
template <typename Fn>
void
parallelFor(ThreadPool &pool, std::size_t n, Fn &&fn)
{
    detail::runShards(pool, detail::shardRanges(n),
                      [&fn](const detail::ShardRange &s) {
                          for (std::size_t i = s.begin; i < s.end; ++i)
                              fn(i);
                      });
}

/**
 * Deterministic chunk-ordered reduction over [0, n).
 *
 * Each shard folds its indices (ascending) into a private copy of
 * `identity` via fold(acc, i); the per-shard accumulators are then
 * merged into the result **in shard-index order** via
 * merge(into, std::move(from)). Because the shard geometry and the
 * merge order are both independent of the thread count, the returned
 * value is bit-identical for any pool size — merge only needs to be
 * associative *across shard boundaries*, which concatenation, counter
 * addition, and left-fold float sums all satisfy.
 */
template <typename Acc, typename Fold, typename Merge>
Acc
parallelReduce(ThreadPool &pool, std::size_t n, const Acc &identity,
               Fold &&fold, Merge &&merge)
{
    const auto shards = detail::shardRanges(n);
    Acc result = identity;
    if (shards.empty())
        return result;
    std::vector<Acc> partial(shards.size(), identity);
    detail::runShards(pool, shards,
                      [&fold, &partial](const detail::ShardRange &s) {
                          Acc &acc = partial[s.index];
                          for (std::size_t i = s.begin; i < s.end; ++i)
                              fold(acc, i);
                      });
    for (Acc &p : partial)
        merge(result, std::move(p));
    return result;
}

} // namespace aiwc

