/**
 * @file
 * Deterministic, splittable random number generation.
 *
 * Every stochastic component of the library (arrival process, job
 * generator, phase model, utilization model) takes an explicit Rng so
 * that a full 125-day trace is reproducible from a single master seed.
 * The engine is xoshiro256** seeded via splitmix64, which is fast,
 * high-quality, and trivially portable — matching the guidance to avoid
 * hidden global state.
 */

#pragma once

#include <cstdint>

namespace aiwc
{

/**
 * xoshiro256** engine with convenience draws. Satisfies the
 * UniformRandomBitGenerator requirements so it also composes with
 * <random> distributions if ever needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed the four-word state via splitmix64 from a single seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next 64 raw bits. */
    std::uint64_t operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Standard normal via Box-Muller (cached spare). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Exponential with the given rate (mean 1/rate). */
    double exponential(double rate);

    /**
     * Derive an independent child generator. Children drawn from
     * distinct streams never correlate with the parent sequence, which
     * lets e.g. each job own its own telemetry stream regardless of how
     * many draws its neighbours make.
     */
    Rng split();

  private:
    std::uint64_t s_[4];
    double spare_ = 0.0;
    bool has_spare_ = false;
};

} // namespace aiwc

