/**
 * @file
 * Shared binary (de)serialization primitives: little-endian byte
 * writer, bounds-checked byte reader, and CRC-32 (IEEE 802.3).
 *
 * Two subsystems speak binary: the service wire format
 * (aiwc/svc/frame.hh) and the on-disk trace format
 * (aiwc/fmt/trace.hh). Both sit at a trust boundary where raw bytes
 * become typed records, so they share one discipline, implemented
 * here once: writers are append-only and infallible; readers never
 * read past the buffer and never abort — a failed read trips a sticky
 * `failed` flag the caller checks once per structural unit, so
 * truncated or hostile input degrades into a rejection verdict, not
 * UB. All integers are little-endian on the wire and on disk;
 * doubles travel as their IEEE-754 bit patterns, so values round-trip
 * bit-exactly.
 */

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace aiwc
{

/** Little-endian append-only byte sink. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t> &out) : out_(out) {}

    void
    u8(std::uint8_t v)
    {
        out_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        out_.push_back(static_cast<std::uint8_t>(v));
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

  private:
    std::vector<std::uint8_t> &out_;
};

/**
 * Bounds-checked little-endian reader: every getter returns a value
 * and trips `failed` instead of reading past the end. Callers check
 * ok() once per structural unit, so a truncated payload degrades into
 * a single rejection verdict rather than UB.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const std::uint8_t> data)
        : data_(data)
    {
    }

    bool ok() const { return !failed_; }
    std::size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return pos_ == data_.size(); }

    std::uint8_t
    u8()
    {
        if (remaining() < 1) {
            failed_ = true;
            return 0;
        }
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        return static_cast<std::uint16_t>(fixed(2));
    }

    std::uint32_t
    u32()
    {
        return static_cast<std::uint32_t>(fixed(4));
    }

    std::uint64_t u64() { return fixed(8); }

    double
    f64()
    {
        return std::bit_cast<double>(fixed(8));
    }

  private:
    std::uint64_t
    fixed(std::size_t bytes)
    {
        if (remaining() < bytes) {
            failed_ = true;
            pos_ = data_.size();
            return 0;
        }
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < bytes; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += bytes;
        return v;
    }

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/** CRC-32 (IEEE 802.3 polynomial) over a byte span. */
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

} // namespace aiwc
