/**
 * @file
 * Plain-text table rendering for benches and report output.
 *
 * The paper's figures become text tables: each bench prints the series
 * a figure plots, with a `paper` column next to the `measured` column.
 * TextTable keeps that presentation in one place.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace aiwc
{

/**
 * A simple right-padded text table. Columns are sized to the widest
 * cell; numeric formatting is the caller's responsibility (use
 * formatNumber() for consistency).
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a header underline. */
    void print(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision, trimming trailing zeros. */
std::string formatNumber(double v, int precision = 3);

/** Format a fraction in [0,1] as a percentage string like "42.0%". */
std::string formatPercent(double fraction, int precision = 1);

/** Format a duration in seconds using human units (s / min / h / d). */
std::string formatDuration(double seconds);

} // namespace aiwc

