/**
 * @file
 * Minimal CSV emission, so synthesized traces and analyzer output can be
 * exported to the SciPy/Pandas stack the paper used — making the
 * library's pipeline cross-checkable against notebook analysis.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace aiwc
{

/**
 * Streaming CSV writer with RFC-4180-style quoting. Rows are written
 * immediately; the writer holds only the column count for validation.
 */
class CsvWriter
{
  public:
    /** Bind to an output stream and emit the header row. */
    CsvWriter(std::ostream &os, const std::vector<std::string> &header);

    /** Write a row of raw (pre-formatted) cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Rows written so far, excluding the header. */
    std::size_t rowsWritten() const { return rows_; }

    /** Quote a cell if it contains separators, quotes, or newlines. */
    static std::string escape(const std::string &cell);

  private:
    std::ostream &os_;
    std::size_t columns_;
    std::size_t rows_ = 0;
};

/**
 * Split one CSV line into cells, honouring RFC-4180 quoting ("" is an
 * escaped quote inside a quoted cell). The inverse of
 * CsvWriter::escape for single-line cells.
 */
std::vector<std::string> parseCsvLine(const std::string &line);

} // namespace aiwc

