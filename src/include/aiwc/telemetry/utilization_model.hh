/**
 * @file
 * Within-job utilization dynamics: per-phase mean levels and
 * per-sample noise for every monitored metric. Split from the sampler
 * so the phase-level statistics can be unit-tested and ablated
 * independently of the sampling loop.
 */

#pragma once

#include "aiwc/common/rng.hh"
#include "aiwc/telemetry/job_profile.hh"

namespace aiwc::telemetry
{

/**
 * Highest value ordinary (non-saturating) samples may take. Values at
 * the true limit come only from the profile's saturation flags, so
 * the bottleneck analysis measures calibrated behaviour, not noise.
 */
inline constexpr double natural_ceiling = 0.97;

/** Mean metric levels of one phase. */
struct PhaseLevels
{
    double sm = 0.0;
    double membw = 0.0;
    double memsize = 0.0;
    double tx = 0.0;
    double rx = 0.0;
};

/**
 * Draws phase levels and samples for a job. SM and memory bandwidth
 * share a common phase factor (they co-move within a training step);
 * memory size is calm (allocations persist); PCIe wobbles per phase.
 * The phase factor exp(j*N - j^2/2) has unit mean, so job averages
 * stay centred on the profile means.
 */
class UtilizationModel
{
  public:
    explicit UtilizationModel(const JobProfile &profile)
        : profile_(profile) {}

    /**
     * Mean levels for one active phase.
     * @param gpu_scale static imbalance factor of this GPU.
     */
    PhaseLevels activeLevels(double gpu_scale, Rng &rng) const;

    /** Levels during idle phases: quiescent GPU, retained memory. */
    PhaseLevels idleLevels() const;

    /**
     * One noisy sample around a phase mean, clamped to [0,1].
     * @param rel relative noise (stddev / mean).
     */
    static double noisySample(double mean, double rel, Rng &rng);

  private:
    const JobProfile &profile_;
};

} // namespace aiwc::telemetry

