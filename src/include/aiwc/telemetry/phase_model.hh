/**
 * @file
 * Semi-Markov active/idle phase process (Sec. III, Fig. 6): GPU jobs
 * alternate between irregular active bursts and idle gaps. Interval
 * lengths are log-normal — heavy-tailed enough that the within-job
 * interval-length CoV lands near the paper's medians of 169% (active)
 * and 126% (idle).
 */

#pragma once

#include <vector>

#include "aiwc/common/rng.hh"
#include "aiwc/common/types.hh"
#include "aiwc/telemetry/job_profile.hh"

namespace aiwc::telemetry
{

/** One phase of a job's run. */
struct Phase
{
    bool active = false;
    Seconds length = 0.0;
};

/** Generates a job's phase sequence from its profile. */
class PhaseModel
{
  public:
    explicit PhaseModel(const JobProfile &profile);

    /**
     * Produce alternating phases covering exactly `duration` seconds.
     * The first phase is active with probability equal to the target
     * active fraction; the last phase is truncated to fit.
     */
    std::vector<Phase> generate(Seconds duration, Rng &rng) const;

    /**
     * Median idle-interval length implied by the target active
     * fraction (corrected for the differing log-normal means).
     */
    double impliedIdleMedian() const;

    /** Realized active fraction of a generated sequence. */
    static double activeFraction(const std::vector<Phase> &phases);

  private:
    // By value: a reference member would dangle when the model is
    // built from a temporary profile (caught by ASan).
    JobProfile profile_;
    double clamped_af_;
};

} // namespace aiwc::telemetry

