/**
 * @file
 * Ground-truth telemetry behaviour of one job.
 *
 * The workload generator fills this in when a job is created; the
 * telemetry substrate turns it into nvidia-smi-style samples when the
 * job runs. Keeping it a plain value type means the generator and the
 * sampler stay decoupled and a profile can be serialized alongside a
 * trace.
 */

#pragma once

#include <cstdint>


namespace aiwc::telemetry
{

/** Everything the sampler needs to synthesize a job's GPU telemetry. */
struct JobProfile
{
    int num_gpus = 1;
    /** GPUs (of num_gpus) that stay idle throughout (Sec. V). */
    int idle_gpus = 0;

    /** Target fraction of the run spent in active phases. */
    double active_fraction = 0.8;
    /** Log-normal active interval: median seconds, ln-space sigma. */
    double active_len_median_s = 120.0;
    double active_len_sigma = 1.15;
    /** Idle interval ln-space sigma (median derived from the target
     *  active fraction). */
    double idle_len_sigma = 0.95;

    /** Job-average utilizations in [0,1] during active phases. */
    double sm_mean = 0.2;
    double membw_mean = 0.03;
    double memsize_mean = 0.1;

    /** Phase-to-phase ln-space variability of the phase means. */
    double phase_jitter_sigma = 0.10;
    /** Relative within-phase sample noise for SM / memBW. */
    double sample_noise_rel = 0.08;
    /** Relative sample noise for memory size (allocations are calm). */
    double memsize_noise_rel = 0.05;

    /** Mean PCIe utilizations in [0,1] during active phases. */
    double pcie_tx_mean = 0.2;
    double pcie_rx_mean = 0.2;

    /** Whether the job saturates each resource at least once. */
    bool sat_sm = false;
    bool sat_membw = false;
    bool sat_memsize = false;
    bool sat_tx = false;
    bool sat_rx = false;

    /** Per-job power efficiency jitter (multiplies the load term). */
    double power_efficiency = 1.0;

    /** Seed of this job's private telemetry random stream. */
    std::uint64_t telemetry_seed = 0;

    int activeGpus() const { return num_gpus - idle_gpus; }
};

} // namespace aiwc::telemetry

