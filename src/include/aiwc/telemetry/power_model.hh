/**
 * @file
 * V100 power draw model (Fig. 9): an idle floor plus a load term
 * driven by SM and memory-bandwidth activity. Deliberately simple —
 * the power-cap analysis depends only on the distribution of per-job
 * average and maximum draw, which this reproduces.
 */

#pragma once

#include "aiwc/common/rng.hh"

namespace aiwc::telemetry
{

/** Power model parameters; defaults are the tuned V100 values. */
struct PowerParams
{
    double idle_watts = 30.0;
    double tdp_watts = 300.0;
    /** Weight of SM utilization in the effective load. */
    double sm_weight = 0.40;
    /** Weight of memory-bandwidth utilization. */
    double membw_weight = 0.11;
    /** Per-job efficiency jitter (relative stddev). */
    double efficiency_noise = 0.10;
    /** Per-sample measurement noise, watts. */
    double sample_noise_watts = 3.0;
};

/** Maps utilization samples to instantaneous board power. */
class PowerModel
{
  public:
    explicit PowerModel(const PowerParams &params = {});

    const PowerParams &params() const { return params_; }

    /**
     * Instantaneous draw for one sample.
     * @param sm SM utilization in [0,1].
     * @param membw memory bandwidth utilization in [0,1].
     * @param efficiency per-job multiplier on the load term.
     */
    double sampleWatts(double sm, double membw, double efficiency,
                       Rng &rng) const;

    /** Noise-free draw, for tests and analytic checks. */
    double expectedWatts(double sm, double membw,
                         double efficiency = 1.0) const;

  private:
    PowerParams params_;
};

} // namespace aiwc::telemetry

