/**
 * @file
 * The nvidia-smi-style sampler: turns a job's ground-truth profile
 * into per-GPU telemetry.
 *
 * Faithful to the paper's two collection modes (Sec. II):
 *  - every job gets min/mean/max summaries per metric, collected with
 *    a low-overhead stride (the paper reports only these for the full
 *    47k-job dataset);
 *  - a small subset (~2149 jobs) gets detailed 100 ms collection, from
 *    which the phase statistics of Figs. 6-7a derive.
 *
 * Phase *intervals* are generated exactly regardless of sample stride,
 * so interval-CoV analyses never depend on sampling resolution.
 */

#pragma once

#include <cstdint>

#include "aiwc/core/job_record.hh"
#include "aiwc/telemetry/job_profile.hh"
#include "aiwc/telemetry/power_model.hh"
#include "aiwc/telemetry/time_series.hh"

namespace aiwc::telemetry
{

/** Monitoring cadence and volume caps (Sec. II "System Monitoring"). */
struct MonitoringParams
{
    Seconds gpu_interval = 0.1;   //!< nvidia-smi at 100 ms
    Seconds cpu_interval = 10.0;  //!< Slurm CPU series at 10 s
    /** Jobs in the detailed time-series subset (the paper kept 2149). */
    int timeseries_jobs = 2149;
    /** Target sample count per job in summary mode (stride adapts). */
    int max_summary_samples = 2000;
    /** Target sample count per job in detailed mode. */
    int max_timeseries_samples = 100000;
};

/** Everything the sampler produced for one job. */
struct JobTelemetry
{
    /** One summary per GPU; active GPUs come first. */
    std::vector<core::GpuUsageSummary> per_gpu;
    /** Phase statistics; meaningful only when `detailed`. */
    core::PhaseStats phases;
    bool detailed = false;
    /** Total samples drawn across GPUs (spool accounting). */
    std::uint64_t samples_generated = 0;

    /** Bytes this job's monitors wrote to node-local spool files. */
    std::uint64_t spoolBytes() const
    {
        return samples_generated * sizeof(Sample);
    }
};

/** The sampler. Stateless apart from its configuration. */
class GpuSampler
{
  public:
    GpuSampler(const PowerModel &power, const MonitoringParams &params);

    /**
     * Synthesize one job's telemetry.
     * @param profile ground truth from the workload generator.
     * @param duration observed run length, seconds.
     * @param detailed use the 100 ms subset mode (phase stats filled).
     * @param series optional raw series sink (GPU 0 only); pass
     *        nullptr to skip raw retention.
     */
    JobTelemetry sampleJob(const JobProfile &profile, Seconds duration,
                           bool detailed,
                           TimeSeries *series = nullptr) const;

    const MonitoringParams &params() const { return params_; }

  private:
    const PowerModel &power_;
    MonitoringParams params_;
};

} // namespace aiwc::telemetry

