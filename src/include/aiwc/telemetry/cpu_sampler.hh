/**
 * @file
 * The CPU-side monitor of Sec. II: the Slurm prolog also starts a
 * host-level time series at 10-second intervals on every node of a
 * job. This sampler synthesizes that series — host CPU utilization and
 * host RAM occupancy — from a job's shape: GPU jobs keep a few
 * dataloader/driver cores busy, CPU jobs saturate their whole-node
 * allocation, and both idle alongside the GPU's idle phases.
 */

#pragma once

#include "aiwc/common/types.hh"
#include "aiwc/stats/descriptive.hh"
#include "aiwc/telemetry/job_profile.hh"

namespace aiwc::telemetry
{

/** Host-side ground truth for one job. */
struct HostProfile
{
    /** Hyperthread slots allocated to the job (its utilization cap). */
    int cpu_slots = 4;
    /** Host RAM allocated, GB. */
    double ram_gb = 16.0;
    /** Mean busy slots during GPU-active phases (dataloaders, the
     *  framework main loop); for CPU jobs, the working parallelism. */
    double busy_slots_mean = 3.0;
    /** Mean busy slots during GPU-idle phases (setup, I/O waits). */
    double idle_busy_slots_mean = 1.0;
    /** Resident-set fraction of the allocation actually touched. */
    double rss_fraction = 0.6;
    /** Relative per-sample noise. */
    double noise_rel = 0.15;
    std::uint64_t seed = 0;
};

/** Per-job host-side summary (the Slurm-log CPU columns). */
struct HostTelemetry
{
    /** Busy slots / allocated slots over the run, [0,1]. */
    stats::RunningSummary cpu_util;
    /** Resident set / allocated RAM over the run, [0,1]. */
    stats::RunningSummary rss_util;
    std::uint64_t samples = 0;
};

/** Synthesizes the 10 s host series for one job. */
class CpuSampler
{
  public:
    /** @param interval sampling cadence (paper: 10 s). */
    explicit CpuSampler(Seconds interval = 10.0) : interval_(interval) {}

    /**
     * Sample a job's host telemetry.
     * @param host host-side ground truth.
     * @param gpu GPU-side profile, used only for its active/idle
     *        phase structure; pass nullptr for CPU-only jobs (always
     *        "active").
     * @param duration run length, seconds.
     */
    HostTelemetry sampleJob(const HostProfile &host,
                            const JobProfile *gpu,
                            Seconds duration) const;

    Seconds interval() const { return interval_; }

  private:
    Seconds interval_;
};

} // namespace aiwc::telemetry

