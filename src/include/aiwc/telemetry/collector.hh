/**
 * @file
 * The monitoring data path of Sec. II: prolog-started monitors write
 * time series to node-local storage (never the shared filesystem, to
 * avoid overloading the metadata server — one of the paper's
 * operational lessons), and the Slurm epilog copies the files back to
 * the central store at job termination.
 *
 * This module models that data path so its costs are measurable: peak
 * per-node spool occupancy, central-store growth, and the volume the
 * shared filesystem was spared.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "aiwc/common/types.hh"

namespace aiwc::telemetry
{

/** Node-local spool files holding in-flight monitoring data. */
class NodeSpool
{
  public:
    /** Prolog: open a spool stream for (job, node). */
    void open(JobId job, NodeId node);

    /** Monitor write: append bytes to the (job, node) stream. */
    void append(JobId job, NodeId node, std::uint64_t bytes);

    /**
     * Epilog: close the stream and hand its contents off.
     * @return bytes that were spooled for this (job, node).
     */
    std::uint64_t drain(JobId job, NodeId node);

    /** Bytes currently spooled on one node across all jobs. */
    std::uint64_t nodeOccupancy(NodeId node) const;

    /** Highest occupancy any node ever reached. */
    std::uint64_t peakNodeOccupancy() const { return peak_; }

    /** Streams currently open. */
    std::size_t openStreams() const { return streams_.size(); }

  private:
    struct Key
    {
        JobId job;
        NodeId node;
        bool operator==(const Key &) const = default;
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return (static_cast<std::size_t>(k.job) << 20) ^ k.node;
        }
    };

    std::unordered_map<Key, std::uint64_t, KeyHash> streams_;
    std::unordered_map<NodeId, std::uint64_t> per_node_;
    std::uint64_t peak_ = 0;
};

/**
 * The epilog-side collector: drains spools into the central store and
 * keeps the aggregate statistics an operator would watch.
 */
class EpilogCollector
{
  public:
    explicit EpilogCollector(NodeSpool &spool) : spool_(&spool) {}

    /** Prolog hook: start monitoring a job on its nodes. */
    void onProlog(JobId job, const std::vector<NodeId> &nodes);

    /** Monitor output for a job, attributed evenly across its nodes. */
    void recordSamples(JobId job, std::uint64_t bytes);

    /** Epilog hook: stop monitors and copy spools to central store. */
    void onEpilog(JobId job);

    /** Total bytes landed in the central store. */
    std::uint64_t centralStoreBytes() const { return central_bytes_; }

    /** Jobs fully collected. */
    std::size_t jobsCollected() const { return jobs_collected_; }

    /** Peak node-local spool occupancy seen (capacity planning). */
    std::uint64_t peakNodeOccupancy() const
    {
        return spool_->peakNodeOccupancy();
    }

  private:
    NodeSpool *spool_;
    std::unordered_map<JobId, std::vector<NodeId>> nodes_of_;
    std::uint64_t central_bytes_ = 0;
    std::size_t jobs_collected_ = 0;
};

} // namespace aiwc::telemetry

