/**
 * @file
 * Fixed-stride multi-channel time series, as one nvidia-smi log file:
 * one row every sampling interval, one column per monitored metric.
 * Used for the detailed-subset jobs and the example programs; bulk
 * analysis uses streaming summaries instead (see sampler.hh).
 */

#pragma once

#include <array>
#include <ostream>
#include <vector>

#include "aiwc/base/check.hh"
#include "aiwc/common/types.hh"

namespace aiwc::telemetry
{

/** One sampled row: every monitored metric at one instant. */
struct Sample
{
    float sm = 0.0f;
    float membw = 0.0f;
    float memsize = 0.0f;
    float pcie_tx = 0.0f;
    float pcie_rx = 0.0f;
    float power_watts = 0.0f;
};

/** A fixed-stride sequence of samples starting at time zero. */
class TimeSeries
{
  public:
    explicit TimeSeries(Seconds stride) : stride_(stride)
    {
        AIWC_CHECK_GT(stride, 0.0, "time series needs a positive stride");
    }

    Seconds stride() const { return stride_; }
    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /**
     * Append one row. Utilizations and power are physical quantities;
     * negative values mean an upstream model bug, so Debug builds
     * reject them here rather than letting them skew every downstream
     * CoV figure.
     */
    void
    append(const Sample &s)
    {
        AIWC_DCHECK_GE(s.sm, 0.0f, "negative SM utilization");
        AIWC_DCHECK_GE(s.membw, 0.0f, "negative memory bandwidth");
        AIWC_DCHECK_GE(s.memsize, 0.0f, "negative memory size");
        AIWC_DCHECK_GE(s.pcie_tx, 0.0f, "negative PCIe TX");
        AIWC_DCHECK_GE(s.pcie_rx, 0.0f, "negative PCIe RX");
        AIWC_DCHECK_GE(s.power_watts, 0.0f, "negative power draw");
        samples_.push_back(s);
    }

    const Sample &
    at(std::size_t i) const
    {
        AIWC_DCHECK_LT(i, samples_.size(), "sample index out of range");
        return samples_[i];
    }
    Seconds timeOf(std::size_t i) const
    {
        return stride_ * static_cast<double>(i);
    }

    const std::vector<Sample> &samples() const { return samples_; }

    /** Approximate in-memory footprint, bytes (spool accounting). */
    std::size_t byteSize() const
    {
        return samples_.size() * sizeof(Sample);
    }

    /** Dump as CSV with a time column. */
    void writeCsv(std::ostream &os) const;

  private:
    Seconds stride_;
    std::vector<Sample> samples_;
};

} // namespace aiwc::telemetry

