/**
 * @file
 * The monitoring data-path lesson of Sec. II, executable: "the logging
 * tools can easily overload the metadata server and shared file
 * system", which is why the Supercloud writes time series to
 * node-local storage and copies them back at the epilog.
 *
 * This model compares the two designs over a dataset: writing every
 * sample straight to the shared filesystem (per-sample IOPS and open
 * streams scale with concurrent jobs) versus spooling locally and
 * copying once per job at termination (one sequential burst per job).
 */

#pragma once

#include "aiwc/core/dataset.hh"
#include "aiwc/telemetry/sampler.hh"

namespace aiwc::telemetry
{

/** Load profile of one monitoring design. */
struct MonitoringLoad
{
    /** Peak concurrently open write streams on the shared FS. */
    int peak_streams = 0;
    /** Peak sustained write row rate hitting the shared FS (rows/s). */
    double peak_rows_per_second = 0.0;
    /** Total bytes landing on the shared FS. */
    double total_bytes = 0.0;
    /** Largest single burst (bytes moved at one job's epilog). */
    double largest_burst_bytes = 0.0;
};

/** Side-by-side comparison of the two data paths. */
struct MonitoringComparison
{
    MonitoringLoad direct;   //!< every sample to the shared FS
    MonitoringLoad spooled;  //!< node-local spool + epilog copy
    /** peak_rows_per_second reduction factor (direct / spooled streams
     *  measured as epilog copies per second). */
    double metadata_relief_factor = 0.0;
};

/** Evaluates both designs over a dataset's job timeline. */
class MonitoringLoadModel
{
  public:
    explicit MonitoringLoadModel(const MonitoringParams &params = {})
        : params_(params) {}

    /** Rows/s one running job emits (GPU @10 Hz/GPU + CPU @0.1 Hz/node). */
    double rowsPerSecond(const core::JobRecord &job) const;

    MonitoringComparison analyze(const core::Dataset &dataset) const;

  private:
    MonitoringParams params_;
};

} // namespace aiwc::telemetry

