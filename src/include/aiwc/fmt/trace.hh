/**
 * @file
 * The on-disk binary trace format: a versioned, checksummed, columnar
 * snapshot of a study Dataset.
 *
 * CSV stays the interchange format; this is the working format. A
 * trace file is a fixed header, a CRC-protected section directory,
 * and one 8-byte-aligned section per column — the same
 * struct-of-arrays layout the in-memory ColumnTable uses, plus the
 * interned user and job-type id tables, per-GPU RunningSummary raw
 * accumulator states, and the phase stats of the time-series subset.
 *
 * Fidelity is bit-exact: doubles are stored as IEEE-754 bit patterns
 * and summaries as their raw accumulators (not derived moments), so
 * decode(encode(d)) reproduces every field of d exactly and a loaded
 * Dataset yields byte-identical analyzer output to the CSV-parsed
 * original (the determinism harness enforces this).
 *
 * The decoder is total over garbage: every length, offset, CRC, enum
 * and float is validated before use, and any violation degrades into
 * a TraceStatus verdict — never an abort, never UB. The reading
 * discipline (bounds-checked ByteReader, sticky failure, CRC at the
 * trust boundary) is shared with the svc wire format via
 * aiwc/common/binary.hh.
 *
 * Layout (all integers little-endian):
 *
 *   header (24 B): magic u32 | version u16 | flags u16 | rows u64 |
 *                  section_count u32 | directory_crc u32
 *   directory:     section_count x (id u32 | crc u32 | offset u64 |
 *                  length u64)
 *   sections:      each starting at an 8-byte-aligned offset
 *
 * Section ids (all required, in this order):
 *    1 job_id      u32[rows]        2 user_table  u32[users]
 *    3 user_index  u32[rows]        4 interface   u8[rows]
 *    5 terminal    u8[rows]         6 true_class  u8[rows]
 *    7 has_ts      u8[rows]         8 submit      f64[rows]
 *    9 start       f64[rows]       10 end         f64[rows]
 *   11 walltime    f64[rows]       12 gpus        u32[rows]
 *   13 cpu_slots   u32[rows]       14 ram_gb      f64[rows]
 *   15 gpu_offsets u64[rows + 1]   16 gpu_stats   40 B x 6 per GPU
 *   17 phases      stream          18 type_table  u32[types]
 *
 * gpu_stats holds, per flattened GPU (rows' GPUs concatenated in row
 * order), six RunningSummary raw states of (count u64, min f64,
 * max f64, sum f64, sum_sq f64) in Resource order. phases holds, for
 * each has_ts row in row order: active_fraction f64, three CoV f64,
 * then the active and idle interval lists each as (count u32,
 * f64 x count). Unknown section ids are ignored (forward compat);
 * breaking changes bump the version.
 */

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "aiwc/core/dataset.hh"

namespace aiwc::fmt
{

/** "AWCT" as a little-endian u32. */
inline constexpr std::uint32_t trace_magic = 0x54435741;

inline constexpr std::uint16_t trace_version = 1;

/** Decode verdict; everything but Ok leaves the dataset empty. */
enum class TraceStatus : std::uint8_t
{
    Ok,
    IoError,       //!< file missing / unreadable
    Truncated,     //!< shorter than its own header or directory
    BadMagic,      //!< not a trace file
    VersionSkew,   //!< newer (or older) incompatible version
    BadDirectory,  //!< directory CRC mismatch or bogus extents
    BadCrc,        //!< a section's payload fails its checksum
    Malformed,     //!< CRC-valid bytes that violate the schema
};

const char *toString(TraceStatus status);

/** Result of decoding a trace: a verdict plus the dataset on Ok. */
struct TraceLoadResult
{
    TraceStatus status = TraceStatus::IoError;
    core::Dataset dataset;
    std::string error;  //!< one-line reason when !ok()

    bool ok() const { return status == TraceStatus::Ok; }
};

/** Serialize @p dataset into trace-format bytes. */
std::vector<std::uint8_t> encodeTrace(const core::Dataset &dataset);

/** Decode trace bytes; total over arbitrary input. */
TraceLoadResult decodeTrace(std::span<const std::uint8_t> bytes);

/**
 * Write @p dataset to @p path in trace format.
 * @return false on I/O failure, with the reason in *error if given.
 */
bool writeTraceFile(const std::string &path,
                    const core::Dataset &dataset,
                    std::string *error = nullptr);

/** Memory-map (or read) @p path and decode it. */
TraceLoadResult loadTraceFile(const std::string &path);

/**
 * Order-sensitive FNV-1a digest of the dataset's canonical trace
 * encoding. Two datasets digest equal iff every record matches
 * bit-for-bit — the CI round-trip gate compares the CSV-parsed and
 * binary-loaded datasets with this.
 */
std::uint64_t contentDigest(const core::Dataset &dataset);

} // namespace aiwc::fmt
