/**
 * @file
 * Read-only memory-mapped file with a buffered-read fallback.
 *
 * The trace loader wants the whole file as one contiguous byte span:
 * the format is offset-addressed (a section directory points into the
 * file), so mapping avoids a copy of what can be hundreds of
 * megabytes of columns. When mmap is unavailable (non-POSIX build,
 * or the map call fails) the file is read into an owned buffer
 * instead — callers see the same span either way.
 */

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace aiwc::fmt
{

/** An open read-only file presented as one contiguous byte span. */
class MmapFile
{
  public:
    MmapFile() = default;
    ~MmapFile();

    MmapFile(MmapFile &&other) noexcept;
    MmapFile &operator=(MmapFile &&other) noexcept;
    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /**
     * Map (or read) @p path. On failure returns an invalid MmapFile;
     * error() holds a one-line reason. An empty file opens valid with
     * an empty span.
     */
    static MmapFile open(const std::string &path);

    bool valid() const { return valid_; }
    const std::string &error() const { return error_; }

    /** The file contents; empty for an empty or invalid file. */
    std::span<const std::uint8_t> bytes() const { return bytes_; }

  private:
    void reset() noexcept;

    std::span<const std::uint8_t> bytes_;
    void *map_addr_ = nullptr;   //!< non-null iff backed by mmap
    std::size_t map_len_ = 0;
    std::vector<std::uint8_t> owned_;  //!< fallback buffer
    bool valid_ = false;
    std::string error_;
};

} // namespace aiwc::fmt
