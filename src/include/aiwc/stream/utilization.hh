/**
 * @file
 * Streaming Fig. 4a: per-job mean GPU utilization quantile sketches
 * (SM, memory bandwidth, memory size, PCIe Tx/Rx), the online
 * counterpart of core::UtilizationAnalyzer.
 */

#pragma once

#include <array>
#include <cstddef>

#include "aiwc/common/types.hh"
#include "aiwc/core/job_record.hh"
#include "aiwc/sketch/kll.hh"

namespace aiwc::stream
{

/**
 * Mergeable streaming counterpart of core::UtilizationAnalyzer:
 * one KLL sketch per resource axis over 100 * meanUtilization(r) of
 * every filtered GPU job.
 */
class StreamingUtilization
{
  public:
    StreamingUtilization(std::uint32_t kll_k, std::uint64_t seed,
                         Seconds min_gpu_runtime);

    /** Fold one record in; ignores CPU and sub-filter jobs. */
    void observe(const core::JobRecord &rec);

    /** Fold another accumulator in (parallelReduce combine step). */
    void merge(const StreamingUtilization &other);

    /** Sketch of 100 * meanUtilization(r), percent of capacity. */
    const sketch::KllSketch &byResource(Resource r) const;

    /** Footprint of all sketches, bytes. */
    std::size_t bytes() const;

  private:
    /** Utilization axes sketched (Power is PowerAnalyzer's job). */
    static constexpr std::size_t num_axes = 5;

    Seconds min_gpu_runtime_;
    std::array<sketch::KllSketch, num_axes> pct_;
};

} // namespace aiwc::stream
