/**
 * @file
 * Streaming Fig. 9: per-job average/max power-draw quantile sketches
 * and the power-cap what-if evaluated on the sketched CDFs, the online
 * counterpart of core::PowerAnalyzer.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "aiwc/common/types.hh"
#include "aiwc/core/job_record.hh"
#include "aiwc/core/power_analyzer.hh"
#include "aiwc/sketch/kll.hh"

namespace aiwc::stream
{

/**
 * Mergeable streaming counterpart of core::PowerAnalyzer. The cap
 * impacts (Fig. 9b) use the same semantics as the batch path —
 * unimpacted = F_max(cap), impacted-by-max = 1 - F_max(cap),
 * impacted-by-avg = 1 - F_avg(cap) — with the CDFs estimated by the
 * sketches, so each fraction carries the sketch's rank-error bound.
 */
class StreamingPower
{
  public:
    StreamingPower(std::uint32_t kll_k, std::uint64_t seed,
                   Seconds min_gpu_runtime,
                   std::vector<double> caps = {150.0, 200.0, 250.0});

    /** Fold one record in; ignores CPU and sub-filter jobs. */
    void observe(const core::JobRecord &rec);

    /** Fold another accumulator in; cap lists must match (CHECK). */
    void merge(const StreamingPower &other);

    const sketch::KllSketch &avgWatts() const { return avg_watts_; }
    const sketch::KllSketch &maxWatts() const { return max_watts_; }

    /** Fig. 9b impacts from the sketched CDFs; empty sketch => empty. */
    std::vector<core::PowerCapImpact> capImpacts() const;

    const std::vector<double> &caps() const { return caps_; }

    /** Footprint of both sketches, bytes. */
    std::size_t bytes() const;

  private:
    Seconds min_gpu_runtime_;
    std::vector<double> caps_;
    sketch::KllSketch avg_watts_;
    sketch::KllSketch max_watts_;
};

} // namespace aiwc::stream
