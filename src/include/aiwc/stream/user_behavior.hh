/**
 * @file
 * Streaming Figs. 10-11: per-user aggregates from O(1)-per-user moment
 * accumulators plus a space-saving top-k over GPU-hours, the online
 * counterpart of core::UserBehaviorAnalyzer. State is O(active users),
 * not O(jobs) — each user costs four StreamingMoments, never a job
 * list — and the headline "who dominates the machine" question is
 * answerable from the O(k) heavy-hitters sketch alone.
 */

#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "aiwc/common/types.hh"
#include "aiwc/core/job_record.hh"
#include "aiwc/core/user_behavior_analyzer.hh"
#include "aiwc/sketch/heavy_hitters.hh"
#include "aiwc/sketch/moments.hh"

namespace aiwc::stream
{

/**
 * Mergeable streaming counterpart of core::UserBehaviorAnalyzer.
 * summaries() reproduces the batch UserSummary list (means exactly,
 * CoVs via Welford within floating-point noise of the two-pass batch
 * values); the job-share concentration numbers are exact.
 */
class StreamingUserBehavior
{
  public:
    /**
     * @param heavy_hitter_capacity tracked users in the GPU-hours
     *     top-k sketch.
     * @param min_gpu_runtime GPU-job runtime filter, seconds.
     * @param min_jobs_for_cov users below this report NaN CoVs.
     */
    StreamingUserBehavior(std::size_t heavy_hitter_capacity,
                          Seconds min_gpu_runtime,
                          std::size_t min_jobs_for_cov = 2);

    /** Fold one record in; ignores CPU and sub-filter jobs. */
    void observe(const core::JobRecord &rec);

    /** Fold another accumulator in (parallelReduce combine step). */
    void merge(const StreamingUserBehavior &other);

    /** Number of distinct users observed. */
    std::size_t userCount() const { return users_.size(); }

    /**
     * Per-user summaries in ascending user-id order, mirroring
     * core::UserBehaviorAnalyzer::summarize: CoV fields stay 0 below
     * min_jobs_for_cov and are NaN for zero-mean series (the
     * stats::covPercent convention).
     */
    std::vector<core::UserSummary> summaries() const;

    /** Share of all jobs submitted by the top `fraction` of users. */
    double topJobShare(double fraction) const;

    /** Median of the per-user job counts. */
    double medianJobsPerUser() const;

    /** Top-k users by GPU-hours from the heavy-hitters sketch. */
    std::vector<sketch::HeavyHitters::Entry>
    topUsersByGpuHours(std::size_t k) const;

    /**
     * Footprint in bytes: the per-user table (O(users)) plus the
     * heavy-hitters sketch (O(capacity)).
     */
    std::size_t bytes() const;

  private:
    /** O(1) per-user state; one slot per metric of Fig. 10/11. */
    struct UserAccum
    {
        sketch::StreamingMoments runtime_min;
        sketch::StreamingMoments sm_pct;
        sketch::StreamingMoments membw_pct;
        sketch::StreamingMoments memsize_pct;
        double gpu_hours = 0.0;

        void merge(const UserAccum &other);
    };

    Seconds min_gpu_runtime_;
    std::size_t min_jobs_for_cov_;
    // Ordered map: summaries() iterates in user-id order, matching the
    // batch analyzer's output order (det-unordered-iter rule).
    std::map<UserId, UserAccum> users_;
    sketch::HeavyHitters hours_topk_;
};

} // namespace aiwc::stream
