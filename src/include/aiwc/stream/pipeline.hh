/**
 * @file
 * The bounded-memory streaming characterization pipeline: JobRecords
 * in, sketch state retained, SnapshotReport out at any moment. This is
 * the online counterpart of the batch Dataset-plus-analyzer path — the
 * architectural hinge for traces far larger than memory, where results
 * must stay live while ingestion continues (ROADMAP north star).
 *
 * The pipeline itself is a mergeable accumulator (CONTRIBUTING rule):
 * ingest() folds one record, merge() combines two pipelines, and
 * ingestParallel() shard-fans a batch through parallelReduce with
 * shard-index-order merges — so the resulting state, and therefore
 * every snapshot, is byte-identical at any thread count.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "aiwc/base/mutex.hh"
#include "aiwc/base/thread_annotations.hh"
#include "aiwc/common/types.hh"
#include "aiwc/core/job_record.hh"
#include "aiwc/sketch/reservoir.hh"
#include "aiwc/stream/power.hh"
#include "aiwc/stream/service_time.hh"
#include "aiwc/stream/snapshot.hh"
#include "aiwc/stream/user_behavior.hh"
#include "aiwc/stream/utilization.hh"

namespace aiwc::stream
{

/** Geometry and filter knobs shared by every analyzer in a pipeline. */
struct StreamOptions
{
    /** KLL compactor capacity; error shrinks as 1/kll_k. */
    std::uint32_t kll_k = 256;
    /** Users tracked by the GPU-hours heavy-hitters sketch. */
    std::size_t heavy_hitter_capacity = 32;
    /** Exemplar jobs kept by the deterministic reservoir. */
    std::size_t reservoir_capacity = 64;
    /** Seed for sketch compaction coins and reservoir priorities. */
    std::uint64_t sketch_seed = 0;
    /** GPU-job runtime filter, seconds (paper's 30 s debris cut). */
    Seconds min_gpu_runtime = 30.0;
    /** Power caps evaluated in the Fig. 9b what-if, watts. */
    std::vector<double> power_caps = {150.0, 200.0, 250.0};
    /** Quantile levels sampled when rendering sketch CDFs. */
    int snapshot_points = 201;

    bool operator==(const StreamOptions &) const = default;
};

/**
 * Single-pass streaming pipeline over JobRecords. Memory is bounded by
 * the sketch geometry (plus O(active users) for the per-user table),
 * independent of how many records flow through; sketchBytes() reports
 * the current footprint and is exported as the aiwc.sketch.bytes
 * gauge at snapshot time.
 *
 * Synchronization contract: ingest(), merge(), snapshot(), rows(),
 * and sketchBytes() serialize on an internal mutex, so one pipeline
 * may be fed and queried from different threads concurrently — the
 * serving pattern aiwc::svc relies on. A snapshot observes a state
 * with whole records applied, never a torn one. The lock is per
 * pipeline and uncontended in the parallelReduce shard fan-out (each
 * shard owns a private copy), so the deterministic-parallelism hot
 * path pays only an uncontended acquire. The accessor methods below
 * the snapshot section (serviceTime() etc.) return references into
 * the live state and are for single-threaded harness use only.
 */
class StreamPipeline
{
  public:
    explicit StreamPipeline(StreamOptions options = {});

    /** Copies lock @p other, so a concurrently-fed source is safe. */
    StreamPipeline(const StreamPipeline &other);
    StreamPipeline &operator=(const StreamPipeline &other);

    /** Fold one record into every analyzer. */
    void ingest(const core::JobRecord &rec);

    /**
     * Fold another pipeline in. Both must have been constructed with
     * identical options (AIWC_CHECK) so sketch geometries line up.
     */
    void merge(const StreamPipeline &other);

    /**
     * Render the current state as a SnapshotReport. Const — a
     * snapshot never perturbs the stream state, which the determinism
     * harness checks by digesting snapshots mid- and post-stream.
     * Safe to call while another thread is ingesting: the internal
     * mutex guarantees the rendered state sits on a record boundary.
     */
    SnapshotReport snapshot() const;

    /** Records ingested so far. */
    std::uint64_t rows() const;

    /** Current sketch + per-user-table footprint, bytes. */
    std::size_t sketchBytes() const;

    const StreamOptions &options() const { return options_; }

    // Per-figure analyzers, exposed for the equivalence harnesses.
    // Invariant: these lock-free reads are sanctioned for the
    // single-threaded harness only — the caller owns the pipeline and
    // no ingest/merge/snapshot runs concurrently (class comment), so
    // the guarded state cannot be torn. Concurrent readers must go
    // through snapshot().
    const StreamingServiceTime &
    serviceTime() const AIWC_NO_THREAD_SAFETY_ANALYSIS
    {
        // aiwc-lint: allow(guarded-field) -- single-threaded harness accessor; caller quiesces the pipeline (see invariant above)
        return service_time_;
    }
    const StreamingUtilization &
    utilization() const AIWC_NO_THREAD_SAFETY_ANALYSIS
    {
        // aiwc-lint: allow(guarded-field) -- single-threaded harness accessor; caller quiesces the pipeline (see invariant above)
        return utilization_;
    }
    const StreamingPower &
    power() const AIWC_NO_THREAD_SAFETY_ANALYSIS
    {
        // aiwc-lint: allow(guarded-field) -- single-threaded harness accessor; caller quiesces the pipeline (see invariant above)
        return power_;
    }
    const StreamingUserBehavior &
    userBehavior() const AIWC_NO_THREAD_SAFETY_ANALYSIS
    {
        // aiwc-lint: allow(guarded-field) -- single-threaded harness accessor; caller quiesces the pipeline (see invariant above)
        return user_behavior_;
    }
    const sketch::ReservoirSample &
    exemplars() const AIWC_NO_THREAD_SAFETY_ANALYSIS
    {
        // aiwc-lint: allow(guarded-field) -- single-threaded harness accessor; caller quiesces the pipeline (see invariant above)
        return exemplars_;
    }

  private:
    /** Member-wise copy with @p other's lock already held. */
    StreamPipeline(const StreamPipeline &other,
                   const MutexLock &other_lock)
        AIWC_REQUIRES(other.mutex_);

    /** Unlocked body shared by the locking public entry points. */
    std::size_t sketchBytesLocked() const AIWC_REQUIRES(mutex_);

    /**
     * Serializes ingest/merge/snapshot (see class comment). mutable:
     * snapshot() is const yet must exclude concurrent mutation.
     */
    mutable Mutex mutex_;
    /** Immutable after construction; operator= holds both locks. */
    StreamOptions options_;
    std::uint64_t rows_ AIWC_GUARDED_BY(mutex_) = 0;
    std::uint64_t gpu_jobs_ AIWC_GUARDED_BY(mutex_) = 0;
    std::uint64_t cpu_jobs_ AIWC_GUARDED_BY(mutex_) = 0;
    StreamingServiceTime service_time_ AIWC_GUARDED_BY(mutex_);
    StreamingUtilization utilization_ AIWC_GUARDED_BY(mutex_);
    StreamingPower power_ AIWC_GUARDED_BY(mutex_);
    StreamingUserBehavior user_behavior_ AIWC_GUARDED_BY(mutex_);
    /** Exemplar GPU-job runtimes (minutes), keyed by job id. */
    sketch::ReservoirSample exemplars_ AIWC_GUARDED_BY(mutex_);
};

/**
 * Shard-parallel batch ingest: folds `records` into a fresh pipeline
 * via parallelReduce (per-shard private pipelines, merged in
 * shard-index order). Bit-identical to a serial ingest of the same
 * span up to sketch compaction boundaries, and bit-identical across
 * thread counts by construction.
 */
StreamPipeline ingestParallel(std::span<const core::JobRecord> records,
                              const StreamOptions &options = {});

/**
 * The shard-merge snapshot path: fold the shard pipelines into a fresh
 * accumulator **in shard-index order** (the proven-deterministic merge
 * order) and render that. All shards must share identical options
 * (AIWC_CHECK via merge), and @p shards must be non-empty.
 *
 * Each shard is copied under its own lock, so the view of any single
 * shard is consistent even while that shard is still being fed;
 * cross-shard consistency (every shard at the same stream position)
 * requires the caller to quiesce ingestion first, which is what
 * aiwc::svc's per-tenant drain lock provides.
 */
SnapshotReport snapshotShards(std::span<const StreamPipeline> shards);

} // namespace aiwc::stream
