/**
 * @file
 * The bounded-memory streaming characterization pipeline: JobRecords
 * in, sketch state retained, SnapshotReport out at any moment. This is
 * the online counterpart of the batch Dataset-plus-analyzer path — the
 * architectural hinge for traces far larger than memory, where results
 * must stay live while ingestion continues (ROADMAP north star).
 *
 * The pipeline itself is a mergeable accumulator (CONTRIBUTING rule):
 * ingest() folds one record, merge() combines two pipelines, and
 * ingestParallel() shard-fans a batch through parallelReduce with
 * shard-index-order merges — so the resulting state, and therefore
 * every snapshot, is byte-identical at any thread count.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "aiwc/common/types.hh"
#include "aiwc/core/job_record.hh"
#include "aiwc/sketch/reservoir.hh"
#include "aiwc/stream/power.hh"
#include "aiwc/stream/service_time.hh"
#include "aiwc/stream/snapshot.hh"
#include "aiwc/stream/user_behavior.hh"
#include "aiwc/stream/utilization.hh"

namespace aiwc::stream
{

/** Geometry and filter knobs shared by every analyzer in a pipeline. */
struct StreamOptions
{
    /** KLL compactor capacity; error shrinks as 1/kll_k. */
    std::uint32_t kll_k = 256;
    /** Users tracked by the GPU-hours heavy-hitters sketch. */
    std::size_t heavy_hitter_capacity = 32;
    /** Exemplar jobs kept by the deterministic reservoir. */
    std::size_t reservoir_capacity = 64;
    /** Seed for sketch compaction coins and reservoir priorities. */
    std::uint64_t sketch_seed = 0;
    /** GPU-job runtime filter, seconds (paper's 30 s debris cut). */
    Seconds min_gpu_runtime = 30.0;
    /** Power caps evaluated in the Fig. 9b what-if, watts. */
    std::vector<double> power_caps = {150.0, 200.0, 250.0};
    /** Quantile levels sampled when rendering sketch CDFs. */
    int snapshot_points = 201;

    bool operator==(const StreamOptions &) const = default;
};

/**
 * Single-pass streaming pipeline over JobRecords. Memory is bounded by
 * the sketch geometry (plus O(active users) for the per-user table),
 * independent of how many records flow through; sketchBytes() reports
 * the current footprint and is exported as the aiwc.sketch.bytes
 * gauge at snapshot time.
 */
class StreamPipeline
{
  public:
    explicit StreamPipeline(StreamOptions options = {});

    /** Fold one record into every analyzer. */
    void ingest(const core::JobRecord &rec);

    /**
     * Fold another pipeline in. Both must have been constructed with
     * identical options (AIWC_CHECK) so sketch geometries line up.
     */
    void merge(const StreamPipeline &other);

    /**
     * Render the current state as a SnapshotReport. Const — a
     * snapshot never perturbs the stream state, which the determinism
     * harness checks by digesting snapshots mid- and post-stream.
     */
    SnapshotReport snapshot() const;

    /** Records ingested so far. */
    std::uint64_t rows() const { return rows_; }

    /** Current sketch + per-user-table footprint, bytes. */
    std::size_t sketchBytes() const;

    const StreamOptions &options() const { return options_; }

    // Per-figure analyzers, exposed for the equivalence harnesses.
    const StreamingServiceTime &serviceTime() const
    {
        return service_time_;
    }
    const StreamingUtilization &utilization() const
    {
        return utilization_;
    }
    const StreamingPower &power() const { return power_; }
    const StreamingUserBehavior &userBehavior() const
    {
        return user_behavior_;
    }
    const sketch::ReservoirSample &exemplars() const
    {
        return exemplars_;
    }

  private:
    StreamOptions options_;
    std::uint64_t rows_ = 0;
    std::uint64_t gpu_jobs_ = 0;
    std::uint64_t cpu_jobs_ = 0;
    StreamingServiceTime service_time_;
    StreamingUtilization utilization_;
    StreamingPower power_;
    StreamingUserBehavior user_behavior_;
    /** Exemplar GPU-job runtimes (minutes), keyed by job id. */
    sketch::ReservoirSample exemplars_;
};

/**
 * Shard-parallel batch ingest: folds `records` into a fresh pipeline
 * via parallelReduce (per-shard private pipelines, merged in
 * shard-index order). Bit-identical to a serial ingest of the same
 * span up to sketch compaction boundaries, and bit-identical across
 * thread counts by construction.
 */
StreamPipeline ingestParallel(std::span<const core::JobRecord> records,
                              const StreamOptions &options = {});

} // namespace aiwc::stream
