/**
 * @file
 * The mid-stream answer: everything the paper's headline figures need,
 * rendered from sketch state at any point of the ingest. A snapshot is
 * a plain value — emitting one neither mutates nor locks the pipeline,
 * so a serving layer can publish them while ingestion continues.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "aiwc/core/power_analyzer.hh"
#include "aiwc/core/user_behavior_analyzer.hh"
#include "aiwc/sketch/heavy_hitters.hh"
#include "aiwc/stats/ecdf.hh"

namespace aiwc::stream
{

/**
 * Point-in-time report over everything ingested so far. The CDFs are
 * rendered from the KLL sketches through
 * stats::EmpiricalCdf::fromQuantileFunction, so every quantile carries
 * the sketch's epsilon rank-error bound; the per-user aggregates and
 * cap impacts are listed in their figure order.
 */
struct SnapshotReport
{
    /** Records ingested when the snapshot was taken. */
    std::uint64_t rows = 0;
    std::uint64_t gpu_jobs = 0;   //!< after the runtime filter
    std::uint64_t cpu_jobs = 0;

    /** Total sketch footprint at snapshot time, bytes. */
    std::size_t sketch_bytes = 0;
    /** Worst rank-error bound across the rendered sketches. */
    double epsilon = 0.0;

    // Fig. 3a — service time.
    stats::EmpiricalCdf gpu_runtime_min;
    stats::EmpiricalCdf cpu_runtime_min;
    stats::EmpiricalCdf gpu_wait_s;

    // Fig. 4a — per-job mean utilization, percent.
    stats::EmpiricalCdf sm_pct;
    stats::EmpiricalCdf membw_pct;
    stats::EmpiricalCdf memsize_pct;

    // Fig. 9a/9b — power.
    stats::EmpiricalCdf avg_watts;
    stats::EmpiricalCdf max_watts;
    std::vector<core::PowerCapImpact> caps;

    // Fig. 10 — per-user behaviour.
    std::size_t users = 0;
    stats::EmpiricalCdf user_avg_runtime_min;
    stats::EmpiricalCdf user_avg_sm_pct;
    double top5_job_share = 0.0;
    double top20_job_share = 0.0;
    double median_jobs_per_user = 0.0;
    std::vector<sketch::HeavyHitters::Entry> top_users_by_gpu_hours;

    /** Render the headline numbers as text tables. */
    void print(std::ostream &os) const;
};

} // namespace aiwc::stream
