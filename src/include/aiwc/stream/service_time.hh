/**
 * @file
 * Streaming Fig. 3a: runtime and queue-wait quantile sketches over GPU
 * and CPU jobs, ingested one JobRecord at a time instead of sorting
 * materialized series like core::ServiceTimeAnalyzer.
 */

#pragma once

#include <cstddef>

#include "aiwc/common/types.hh"
#include "aiwc/core/job_record.hh"
#include "aiwc/sketch/kll.hh"

namespace aiwc::stream
{

/**
 * Mergeable streaming counterpart of core::ServiceTimeAnalyzer.
 * Applies the same population split as the batch path: GPU jobs pass
 * the minimum-runtime filter; CPU jobs are unfiltered.
 */
class StreamingServiceTime
{
  public:
    /**
     * @param kll_k compactor capacity shared by all sketches.
     * @param seed sketch seed (see KllSketch).
     * @param min_gpu_runtime GPU-job runtime filter, seconds (the
     *     paper's 30 s debris cut).
     */
    StreamingServiceTime(std::uint32_t kll_k, std::uint64_t seed,
                         Seconds min_gpu_runtime);

    /** Fold one record in; applies the population filters itself. */
    void observe(const core::JobRecord &rec);

    /** Fold another accumulator in (parallelReduce combine step). */
    void merge(const StreamingServiceTime &other);

    const sketch::KllSketch &gpuRuntimeMin() const
    {
        return gpu_runtime_min_;
    }
    const sketch::KllSketch &cpuRuntimeMin() const
    {
        return cpu_runtime_min_;
    }
    const sketch::KllSketch &gpuWaitS() const { return gpu_wait_s_; }
    const sketch::KllSketch &cpuWaitS() const { return cpu_wait_s_; }
    const sketch::KllSketch &gpuWaitPct() const { return gpu_wait_pct_; }
    const sketch::KllSketch &cpuWaitPct() const { return cpu_wait_pct_; }

    /** Footprint of all six sketches, bytes. */
    std::size_t bytes() const;

  private:
    Seconds min_gpu_runtime_;
    sketch::KllSketch gpu_runtime_min_;
    sketch::KllSketch cpu_runtime_min_;
    sketch::KllSketch gpu_wait_s_;
    sketch::KllSketch cpu_wait_s_;
    sketch::KllSketch gpu_wait_pct_;
    sketch::KllSketch cpu_wait_pct_;
};

} // namespace aiwc::stream
