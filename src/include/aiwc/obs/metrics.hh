/**
 * @file
 * Self-observability metrics: counters, gauges, and histograms behind a
 * process-wide registry.
 *
 * The paper is a measurement study; this module points the same
 * discipline back at the pipeline itself. Every hot layer (simulator,
 * scheduler, thread pool, analyzers, synthesizer) registers named
 * metrics here, and each run can export a machine-readable snapshot
 * that the bench harness embeds in BENCH_report.json.
 *
 * Design contract:
 *
 *  - The *update* path is lock-free: counters, gauges, and histogram
 *    buckets are relaxed atomics, safe to hammer from every pool worker
 *    with no contention beyond the cache line.
 *  - The *registration* path (name -> metric lookup) takes a mutex, so
 *    callers cache the returned reference — typically in a
 *    function-local static — and pay the lock once per process.
 *  - Snapshots iterate a std::map, so export order is the sorted name
 *    order: byte-identical JSON for identical metric values, which is
 *    what lets bench_compare.py diff two runs.
 *  - Metrics never feed back into analysis results; instrumentation is
 *    behavior-neutral by construction (the determinism harness checks
 *    this end to end).
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aiwc/base/mutex.hh"
#include "aiwc/base/thread_annotations.hh"

namespace aiwc::obs
{

/** Monotone event count (jobs started, events fired, rows scanned). */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (pool size, config knobs). */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Log2-bucketed histogram of non-negative integer samples — typically
 * nanoseconds of latency or a queue depth. Bucket b counts samples
 * whose bit width is b (i.e. values in [2^(b-1), 2^b)), so 64 buckets
 * cover the full uint64 range at ~2x resolution, which is plenty for
 * "did this hot path get 50% slower" questions while keeping observe()
 * at two relaxed increments plus two CAS-free extrema updates.
 */
class Histogram
{
  public:
    static constexpr std::size_t num_buckets = 65;

    void observe(std::uint64_t v);

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Smallest observed sample; 0 when empty. */
    std::uint64_t min() const;

    /** Largest observed sample; 0 when empty. */
    std::uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    double
    mean() const
    {
        const std::uint64_t n = count();
        return n == 0 ? 0.0
                      : static_cast<double>(sum()) /
                            static_cast<double>(n);
    }

    /**
     * Bucket-resolution quantile estimate: the upper bound of the
     * bucket holding the q-th sample. @param q in [0, 1].
     */
    std::uint64_t quantile(double q) const;

    void reset();

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~0ull};
    std::atomic<std::uint64_t> max_{0};
    std::array<std::atomic<std::uint64_t>, num_buckets> buckets_{};
};

/** One metric's value at snapshot time, already formatted for export. */
struct MetricSample
{
    enum class Kind { Counter, Gauge, Histogram };

    std::string name;
    Kind kind = Kind::Counter;
    std::int64_t value = 0;  //!< counter/gauge value
    // Histogram summary (valid when kind == Histogram).
    std::uint64_t count = 0, sum = 0, min = 0, max = 0;
    std::uint64_t p50 = 0, p90 = 0, p99 = 0;
};

/**
 * Name -> metric map with get-or-create semantics. counter()/gauge()/
 * histogram() return a reference that stays valid for the registry's
 * lifetime; re-registering a name returns the same object, and asking
 * for an existing name with a different kind fails an AIWC_CHECK.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry every subsystem records into. */
    static MetricsRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** All metrics in sorted-name order (deterministic). */
    std::vector<MetricSample> snapshot() const;

    /**
     * JSON export, e.g.
     * {"counters":{"aiwc.sim.events_fired":12},
     *  "gauges":{"aiwc.parallel.pool_threads":8},
     *  "histograms":{"aiwc.sched.pass_ns":{"count":3,...,"p99":1024}}}
     * Keys are sorted; identical values produce identical bytes.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Zero every registered metric (registrations survive). For tests
     * and the bench harness, which want per-run deltas from a registry
     * that other code has already used.
     */
    void resetValues();

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Entry
    {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &lookup(const std::string &name, Kind kind);

    mutable Mutex mutex_;
    std::map<std::string, Entry> metrics_ AIWC_GUARDED_BY(mutex_);
};

} // namespace aiwc::obs

