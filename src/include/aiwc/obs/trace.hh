/**
 * @file
 * Chrome trace_event spans and RAII timers for the pipeline's hot
 * layers.
 *
 * Setting AIWC_TRACE=<path> makes every run write a Chrome
 * trace_event JSON file at process exit — load it in chrome://tracing
 * or Perfetto to see the simulator replay, scheduler passes, parallel
 * shards, and analyzer passes on a per-thread timeline. Tests drive
 * the same machinery programmatically with setTraceEnabled() +
 * writeTrace().
 *
 * Cost model: when tracing is disabled (the default), a TraceSpan is a
 * branch on one relaxed atomic — no clock read, no allocation — so
 * instrumentation can stay compiled into release builds. When enabled,
 * spans append to per-thread buffers (one uncontended mutex each) and
 * nothing is written until flush time, so the recorded timings are not
 * perturbed by I/O.
 *
 * Instrumentation never feeds back into analysis results: enabling or
 * disabling tracing must not change a single output bit (checked by
 * the determinism harness).
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "aiwc/obs/metrics.hh"

namespace aiwc::obs
{

/**
 * True when span collection is on. First call also honors the
 * AIWC_TRACE environment variable: when set to a path, collection
 * starts and the trace is written there at process exit.
 */
bool traceEnabled();

/** Turn span collection on/off programmatically (tests, tools). */
void setTraceEnabled(bool on);

/** Drop every buffered event (does not change enablement). */
void clearTraceEvents();

/** Number of events currently buffered across all threads. */
std::size_t traceEventCount();

/**
 * Serialize the buffered events as Chrome trace_event JSON
 * ({"traceEvents":[...]}). Events are sorted by (timestamp, thread),
 * so equal inputs produce identical bytes. Does not clear the buffer.
 */
void writeTrace(std::ostream &os);

/** writeTrace() to a file; returns false (with a warning) on I/O error. */
bool writeTraceFile(const std::string &path);

/** Nanoseconds since the process's trace epoch (steady clock). */
std::uint64_t traceNowNs();

namespace detail
{
/** Append one complete ("X") event to the calling thread's buffer. */
void recordSpan(std::string name, std::uint64_t start_ns,
                std::uint64_t dur_ns);
} // namespace detail

/**
 * RAII span: names the enclosed scope on the calling thread's trace
 * track. Inert (no clock read) when tracing is disabled.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name) : TraceSpan(std::string(name)) {}

    explicit TraceSpan(std::string name)
    {
        if (traceEnabled()) {
            name_ = std::move(name);
            start_ns_ = traceNowNs();
            active_ = true;
        }
    }

    /** Close the span early (phase-style spans); idempotent. */
    void
    end()
    {
        if (active_) {
            active_ = false;
            detail::recordSpan(std::move(name_), start_ns_,
                               traceNowNs() - start_ns_);
        }
    }

    ~TraceSpan() { end(); }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    std::string name_;
    std::uint64_t start_ns_ = 0;
    bool active_ = false;
};

/**
 * RAII timer: folds the scope's wall time (ns) into a Histogram, and —
 * when a span name is given and tracing is on — also records a span.
 * The histogram side is always live (two relaxed atomics), which is
 * what keeps the metrics snapshot meaningful in production runs.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &hist, const char *span_name = nullptr)
        : hist_(hist), start_ns_(traceNowNs())
    {
        if (span_name != nullptr && traceEnabled())
            span_name_ = span_name;
    }

    ~ScopedTimer()
    {
        const std::uint64_t dur = traceNowNs() - start_ns_;
        hist_.observe(dur);
        if (!span_name_.empty())
            detail::recordSpan(std::move(span_name_), start_ns_, dur);
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram &hist_;
    std::uint64_t start_ns_;
    std::string span_name_;
};

/**
 * Standard instrumentation bundle for one analyzer pass. Registers and
 * updates, for analyzer `name`:
 *   aiwc.analyzer.<name>.runs     counter — passes executed
 *   aiwc.analyzer.<name>.rows     counter — records scanned
 *   aiwc.analyzer.<name>.wall_ns  histogram — wall time per pass
 *   aiwc.analyzer.<name>.cpu_ns   histogram — process CPU time per pass
 *                            (includes pool workers)
 * plus a trace span "analyzer.<name>" when tracing is enabled.
 * CONTRIBUTING.md requires every new analyzer to open one of these.
 */
class AnalyzerScope
{
  public:
    AnalyzerScope(const char *name, std::uint64_t rows);
    ~AnalyzerScope();

    AnalyzerScope(const AnalyzerScope &) = delete;
    AnalyzerScope &operator=(const AnalyzerScope &) = delete;

  private:
    std::string name_;
    std::uint64_t start_wall_ns_;
    std::uint64_t start_cpu_ns_;
};

} // namespace aiwc::obs

