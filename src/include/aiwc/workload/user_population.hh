/**
 * @file
 * The synthetic user population (Sec. IV): who submits, how much, and
 * with what personal style. Users differ in activity (Pareto-like
 * concentration: top 5% of users submit 44% of jobs), lifecycle mix
 * (Fig. 17), skill (expert users drive utilization up, Fig. 12),
 * preferred job lengths (Fig. 10/11), and multi-GPU reach (Sec. V).
 */

#pragma once

#include <array>
#include <span>
#include <vector>

#include "aiwc/common/rng.hh"
#include "aiwc/workload/calibration.hh"

namespace aiwc::workload
{

/** How far up the GPU-count buckets a user's jobs may reach. */
enum class GpuTier : std::uint8_t
{
    SingleOnly,  //!< never runs multi-GPU (~40% of users)
    TwoGpu,      //!< up to 2 GPUs (~47%)
    Medium,      //!< up to 8 GPUs (~7.8%)
    Large,       //!< up to 32 GPUs (~5.2%)
};

/** One user's persistent behavioural parameters. */
struct UserProfile
{
    UserId id = invalid_id;
    /** Relative submission intensity; jobs ~ weight / sum(weights). */
    double activity_weight = 1.0;
    /** Per-user lifecycle mix (Dirichlet around the global mix). */
    std::array<double, num_lifecycles> class_mix{};
    /** Multiplier on class utilization means (expertise). */
    double util_scale = 1.0;
    /** Multiplier on class runtime medians (personal job length). */
    double runtime_scale = 1.0;
    /** Probability a given job is multi-GPU (0 for SingleOnly). */
    double multi_gpu_prob = 0.0;
    GpuTier tier = GpuTier::SingleOnly;
    /** Probability one of this user's jobs is memory-BW-bound. */
    double membw_intensive_prob = 0.0;
    /** Probability one of this user's jobs nearly fills GPU memory. */
    double large_model_prob = 0.0;

    /** Largest GPU-count bucket index this user may draw. */
    int maxBucket() const;
};

/** Builds and owns the user roster; supports activity-weighted draws. */
class UserPopulation
{
  public:
    /**
     * Sample a roster from the profile.
     * @param num_users override; <= 0 means profile.users.num_users.
     */
    UserPopulation(const CalibrationProfile &profile, Rng &rng,
                   int num_users = 0);

    std::span<const UserProfile> users() const { return users_; }
    std::size_t size() const { return users_.size(); }
    const UserProfile &user(UserId id) const;

    /** Draw a user with probability proportional to activity. */
    const UserProfile &sampleByActivity(Rng &rng) const;

    /** Fraction of users whose tier allows multi-GPU jobs. */
    double multiGpuCapableFraction() const;

    /** Whether user id belongs to the heavy cohort. */
    bool isHeavy(UserId id) const { return heavy_[id]; }

  private:
    std::vector<UserProfile> users_;
    std::vector<bool> heavy_;
    std::vector<double> cumulative_weight_;
};

} // namespace aiwc::workload

