/**
 * @file
 * Per-job synthesis: turns (user, submit time) into a scheduler
 * request plus a telemetry ground-truth profile, sampling every
 * calibrated marginal — lifecycle class, interface, GPU count,
 * duration, terminal behaviour, utilization, phases, saturation,
 * and power efficiency.
 */

#pragma once

#include <optional>

#include "aiwc/common/rng.hh"
#include "aiwc/sched/job.hh"
#include "aiwc/telemetry/job_profile.hh"
#include "aiwc/workload/calibration.hh"
#include "aiwc/workload/user_population.hh"

namespace aiwc::workload
{

/** A fully specified job: what Slurm sees plus what the GPUs will do. */
struct GeneratedJob
{
    sched::JobRequest request;
    /** Telemetry ground truth; meaningful only for GPU jobs. */
    telemetry::JobProfile profile;
};

/** Samples jobs according to the calibration profile. */
class JobGenerator
{
  public:
    explicit JobGenerator(const CalibrationProfile &profile);

    /**
     * Synthesize one GPU job for this user.
     * @param force_class pin the lifecycle class (array siblings of a
     *        hyper-parameter sweep share the first job's class).
     */
    GeneratedJob gpuJob(const UserProfile &user, Seconds submit, JobId id,
                        Rng &rng,
                        std::optional<Lifecycle> force_class = {}) const;

    /** Synthesize one CPU-only job (whole-node request, Fig. 3). */
    sched::JobRequest cpuJob(const UserProfile &user, Seconds submit,
                             JobId id, Rng &rng) const;

    /** Draw a lifecycle class from the user's personal mix. */
    Lifecycle sampleClass(const UserProfile &user, Rng &rng) const;

    /** Draw the submission interface given the lifecycle class. */
    Interface sampleInterface(Lifecycle c, Rng &rng) const;

    /** Draw a GPU count for (user, class); 1 unless the user rolls
     *  multi-GPU within their tier. */
    int sampleGpuCount(const UserProfile &user, Lifecycle c,
                       Rng &rng) const;

    /**
     * Monte-Carlo estimate of the probability a job of this class
     * survives the dataset's 30 s runtime filter, for a user with the
     * given runtime scale. The synthesizer divides class weights by
     * the activity-weighted average so the paper's class mix holds
     * *after* filtering, as published.
     */
    double survivalProbability(Lifecycle c, Rng &rng, int trials = 4000,
                               double runtime_scale = 1.0) const;

    const CalibrationProfile &profile() const { return profile_; }

  private:
    /** True run length (seconds) before wall-time clamping. */
    Seconds sampleDuration(const UserProfile &user, Lifecycle c, int gpus,
                           Rng &rng) const;

    /** Fill the telemetry ground truth for a GPU job. */
    void fillProfile(telemetry::JobProfile &out, const UserProfile &user,
                     Lifecycle c, Interface iface, int gpus,
                     Rng &rng) const;

    const CalibrationProfile &profile_;
};

} // namespace aiwc::workload

