/**
 * @file
 * Calibration profile: every paper-published marginal the synthetic
 * workload must reproduce, expressed as distribution parameters.
 *
 * This is the single source of truth for workload synthesis. The
 * generators (user population, job generator, telemetry models) consume
 * these parameters; the analyzers never see them — so when a bench
 * reproduces a figure, the whole generator -> scheduler -> telemetry ->
 * summarizer -> analyzer pipeline has round-tripped the distribution.
 *
 * Parameter values are solved from the paper's published quantiles
 * where possible (see DESIGN.md Sec. 4) and tuned empirically against
 * the tolerance tests in tests/workload/ otherwise.
 */

#pragma once

#include <array>

#include "aiwc/common/types.hh"
#include "aiwc/telemetry/power_model.hh"
#include "aiwc/telemetry/sampler.hh"

namespace aiwc::workload
{

/**
 * Per-lifecycle-class runtime model: a log-normal body (median/sigma in
 * minutes) plus an "abort" spike of near-instant failures (import
 * errors, bad configs) that produces the sub-30-second jobs the paper
 * filters out of GPU analysis.
 */
struct RuntimeParams
{
    double median_minutes = 30.0;
    double sigma = 2.0;
    double abort_prob = 0.0;          //!< chance of a near-instant end
    double abort_median_seconds = 10.0;
    double abort_sigma = 1.0;
};

/**
 * Per-class mean-utilization model. Each job draws its *average* SM
 * utilization from a zero-inflated Beta; memory bandwidth follows SM
 * through a ratio draw (DL workloads are compute-bound, Sec. III);
 * memory size is an independent Beta (allocations, not activity).
 */
struct UtilizationParams
{
    double zero_prob = 0.1;     //!< chance the job barely touches the GPU
    double sm_mean = 0.3;       //!< Beta mean of SM utilization
    double sm_kappa = 1.6;      //!< Beta concentration
    double membw_ratio_mean = 0.15;  //!< memBW as a fraction of SM
    double membw_ratio_kappa = 3.0;
    double memsize_mean = 0.15;
    double memsize_kappa = 1.8;
};

/**
 * Per-class active/idle phase process (Sec. III, Fig. 6): log-normal
 * interval lengths (heavy-tailed => the high interval CoVs of Fig. 6b)
 * and a Beta per-job active-time fraction.
 */
struct PhaseParams
{
    double active_fraction_mean = 0.8;
    double active_fraction_kappa = 4.0;
    double active_len_median_s = 120.0;
    double active_len_sigma = 1.15;  //!< ln-space; CoV ~ 169%
    double idle_len_sigma = 0.95;    //!< ln-space; CoV ~ 126%
};

/**
 * Probability that a job saturates (hits 100% of) each resource at some
 * point during its run (Figs. 7b, 8). PCIe-Rx saturation is drawn
 * first; SM and Tx saturation are conditioned on it to reproduce the
 * pairwise overlaps of Fig. 8b (data-staging phases coincide with
 * compute bursts).
 */
struct SaturationParams
{
    double rx = 0.18;
    double sm_given_rx = 0.50;      //!< joint Rx&SM ~ 9% (Fig. 8b)
    double sm_given_no_rx = 0.159;  //!< total SM ~ 22% (Fig. 7b)
    double tx_given_rx = 0.28;      //!< joint Rx&Tx ~ 5%
    double tx_given_no_rx = 0.085;
    double membw = 0.005;           //!< ~0% (Fig. 7b)
    double memsize = 0.10;
};

/**
 * GPU-count distribution of a job, as weights over the size buckets
 * {1, 2, 4, 8, 16, 32}. Which buckets a given *user* may draw from is
 * limited by the user's size-tier (Sec. V: only 13% of users ever run
 * >= 3 GPUs, 5.2% run >= 9).
 */
using GpuCountWeights = std::array<double, 6>;

/** The GPU counts each weight bucket maps to. */
inline constexpr std::array<int, 6> gpu_count_buckets = {1, 2, 4, 8, 16, 32};

/** All per-lifecycle-class parameters. */
struct ClassParams
{
    double job_fraction = 0.25;  //!< share of GPU jobs (Fig. 15a)
    RuntimeParams runtime;
    UtilizationParams util;
    PhaseParams phase;
    /** Multiplier on runtime per extra GPU: runtime *= gpus^exponent. */
    double multi_gpu_runtime_exponent = 0.3;
    /** Multiplier on the user's multi-GPU probability for this class
     *  (IDE sessions often hold both node GPUs; debug runs rarely). */
    double multi_gpu_prob_scale = 1.0;
    /**
     * Sweep arrays: probability that a submission of this class is an
     * array of same-instant siblings (hyper-parameter sweeps), and the
     * log-normal size of the array.
     */
    double array_prob = 0.0;
    double array_median = 6.0;
    double array_sigma = 0.7;
    int array_max = 40;
    /**
     * Probability that a multi-GPU job of this class leaves half or
     * more of its GPUs idle (misconfigured ranks, Sec. V Fig. 14).
     */
    double idle_gpu_prob = 0.4;
};

/** Interface mix over {map-reduce, batch, interactive, other} (Fig. 5). */
using InterfaceWeights = std::array<double, num_interfaces>;

/** User-population shape (Sec. IV). */
struct UserParams
{
    int num_users = 191;
    /**
     * Two-component activity model, tuned so the top 5% of users
     * submit ~44% of the jobs, the top 20% submit ~83%, and the
     * median user submits ~36 jobs (Sec. IV): a heavy cohort of
     * steady submitters plus a light long-tail.
     */
    double heavy_user_fraction = 0.20;
    double heavy_median_jobs = 900.0;
    double heavy_sigma = 0.65;
    double light_median_jobs = 20.0;
    double light_sigma = 1.1;
    /**
     * Dirichlet concentration for per-user lifecycle mixes. Low values
     * spread users across the whole simplex (Fig. 17: many users have
     * almost no mature jobs). Heavy users get `heavy_mix_factor` times
     * the concentration: production workflows are balanced, casual
     * users are often single-class — which also keeps the fleet-level
     * mix (driven by heavy users) stable across seeds.
     */
    double class_mix_concentration = 0.22;
    /**
     * The concentration grows with user activity:
     * kappa(u) = class_mix_concentration * (1 + jobs(u) / mix_scale).
     * A ten-job student is often single-class; a 900-job production
     * user runs a balanced workflow — and no single user's mix quirk
     * can swing the fleet-level Fig. 15 shares.
     */
    double activity_mix_scale = 8.0;
    /**
     * Cohort-specific lifecycle-mix centres. The fleet mix is the
     * activity-weighted blend (heavy users submit ~83% of jobs), so
     * heavy_class_mix is solved from the Fig. 15a global mix and the
     * light cohort's exploration-leaning centre.
     */
    std::array<double, num_lifecycles> light_class_mix = {0.35, 0.20,
                                                          0.33, 0.12};
    std::array<double, num_lifecycles> heavy_class_mix = {0.645, 0.176,
                                                          0.161, 0.018};
    /**
     * Correlation knobs between user activity and behaviour:
     * skill_slope couples log-activity to utilization efficiency
     * (Fig. 12: expert users use GPUs more efficiently) and
     * runtime_slope couples it (negatively) to job length (heavy
     * submitters run shorter sweep jobs).
     */
    double skill_slope = 0.09;
    double skill_noise = 0.14;
    double runtime_scale_sigma = 1.15;
    double runtime_slope = -0.28;
    /**
     * Heavy users get damped trait variance: a single production
     * user's quirks must not swing fleet-level statistics (they
     * submit hundreds of jobs each), while the light long-tail keeps
     * the per-user diversity of Figs. 10-11 and 17.
     */
    double heavy_runtime_scale_sigma = 0.5;
    double heavy_multi_kappa_factor = 10.0;
    double heavy_membw_trait_factor = 0.25;
    double heavy_large_model_factor = 0.35;
    /** Fraction of users who never run multi-GPU jobs (~40%). */
    double single_gpu_only_users = 0.40;
    /** Heavy users are production teams: their odds of being
     *  single-GPU-only shrink by this factor (also keeps the fleet's
     *  multi-GPU share stable across seeds at small scales). */
    double heavy_single_only_factor = 0.3;
    /** Heavy users also hold the larger allocations: their medium and
     *  large tier quotas scale by this factor, with the light cohort's
     *  quotas reduced so the Sec. V population totals (7.8% / 5.2%)
     *  still hold. */
    double heavy_tier_bias = 2.5;
    /** Fraction of users whose largest jobs reach 3-8 GPUs. */
    double medium_tier_users = 0.078;
    /** Fraction of users whose largest jobs reach >= 9 GPUs. */
    double large_tier_users = 0.052;
    /** Mean per-user multi-GPU job probability (among capable users). */
    double multi_gpu_prob_mean = 0.27;
    double multi_gpu_prob_kappa = 4.0;
    /**
     * Memory-behaviour user traits: a minority of users run
     * memory-bandwidth-bound codes or near-capacity models, which
     * keeps the fleet-level memBW/memsize tails (Fig. 4a) without
     * inflating the *typical* user's averages (Fig. 10).
     */
    double membw_intensive_users = 0.08;
    double membw_intensive_job_prob = 0.50;
    double membw_casual_job_prob = 0.015;
    double large_model_users = 0.15;
    double large_model_job_prob = 0.50;
    double large_model_casual_prob = 0.03;
};

/** CPU-only job population (Fig. 3): short runs, whole-node requests. */
struct CpuJobParams
{
    /** Fraction of all jobs that are CPU-only. */
    double fraction_of_jobs = 0.305;
    double runtime_median_minutes = 8.0;
    double runtime_sigma = 2.4;
    /** Distribution over whole-node counts {1, 2, 4, 8, 16, 32}. */
    std::array<double, 6> node_count_weights = {0.28, 0.20, 0.20,
                                                0.16, 0.10, 0.06};
    /**
     * Slurm job arrays: a CPU submission expands into a burst of
     * same-instant sibling jobs with this probability; the burst size
     * is log-normal. Arrays are what make whole-node demand spiky
     * enough to produce the multi-minute CPU waits of Fig. 3b.
     */
    double array_prob = 0.6;
    double array_median = 24.0;
    double array_sigma = 0.9;
    int array_max = 200;
};

/** Arrival process modulation (Sec. II: deadline and diurnal load). */
struct ArrivalParams
{
    double study_days = 125.0;
    /** Total submissions over the study (GPU + CPU). */
    int total_jobs = 74820;
    /** Peak-to-trough ratio of the diurnal cycle. */
    double diurnal_amplitude = 0.55;
    /** Weekday/weekend load ratio. */
    double weekend_dip = 0.60;
    /** Conference-deadline surges: (day, ramp length days, peak gain). */
    struct Deadline
    {
        double day;
        double ramp_days;
        double gain;
    };
    std::array<Deadline, 2> deadlines = {{{40.0, 10.0, 1.5},
                                          {100.0, 12.0, 1.8}}};
};

/**
 * The full calibration profile. supercloud() returns values tuned to
 * the paper; tests may build reduced or perturbed profiles (e.g. the
 * ablation benches switch individual features off).
 */
struct CalibrationProfile
{
    /** Per-class parameters, indexed by Lifecycle. */
    std::array<ClassParams, num_lifecycles> classes;
    /** Interface mix per class, indexed by Lifecycle. */
    std::array<InterfaceWeights, num_lifecycles> interfaces;
    /** Per-class GPU-count weights (before user-tier masking). */
    std::array<GpuCountWeights, num_lifecycles> gpu_counts;

    UserParams users;
    CpuJobParams cpu_jobs;
    ArrivalParams arrivals;
    telemetry::PowerParams power;          //!< Fig. 9 power model
    telemetry::MonitoringParams monitoring;
    SaturationParams saturation;
    /** Per-interface SM/memBW scaling (Fig. 5: map-reduce and
     *  interactive jobs do mostly data movement and debugging). */
    InterfaceWeights interface_util_scale = {0.20, 0.80, 0.50, 1.15};

    /** IDE session limits: 12 h or 24 h (Sec. VI). */
    double ide_short_timeout_hours = 12.0;
    double ide_long_timeout_hours = 24.0;
    double ide_long_timeout_prob = 0.75;

    /** Wall-time request = duration x U(this range), non-IDE jobs. */
    double walltime_factor_lo = 1.5;
    double walltime_factor_hi = 8.0;
    /** Hard wall-time ceiling. */
    double max_walltime_hours = 96.0;

    /** Fraction of jobs lost to hardware (<0.5%, Sec. II). */
    double node_failure_prob = 0.003;

    /** PCIe mean-utilization range (uniform CDF of Fig. 4b). */
    double pcie_mean_lo = 0.01;
    double pcie_mean_hi = 0.85;

    /** Accessors by class. */
    const ClassParams &forClass(Lifecycle c) const;
    const InterfaceWeights &interfacesFor(Lifecycle c) const;
    const GpuCountWeights &gpuCountsFor(Lifecycle c) const;

    /** The tuned Supercloud profile. */
    static CalibrationProfile supercloud();
};

} // namespace aiwc::workload

