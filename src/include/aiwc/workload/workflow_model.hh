/**
 * @file
 * The user workflow of Fig. 2 as a stochastic process: users design in
 * an IDE session, determine resource requirements with development
 * runs, optimize hyper-parameters with exploratory sweeps, and
 * finalize with mature runs — looping back whenever the code evolves.
 *
 * Modeled as a first-order Markov chain over the four lifecycle
 * stages. The default transition matrix is tuned so the chain's
 * stationary distribution reproduces the fleet-level job mix of
 * Fig. 15a — i.e. the published mix is consistent with every user
 * walking this workflow.
 *
 * The default trace synthesizer draws classes i.i.d. from per-user
 * mixes (sufficient for every published marginal); this model adds the
 * *temporal ordering* for studies that need it (e.g. predicting a
 * job's class from its predecessor).
 */

#pragma once

#include <array>
#include <vector>

#include "aiwc/common/rng.hh"
#include "aiwc/common/types.hh"

namespace aiwc::workload
{

/** Row-stochastic transition matrix over Lifecycle states. */
using WorkflowMatrix =
    std::array<std::array<double, num_lifecycles>, num_lifecycles>;

/** Markov chain over the Fig. 2 development stages. */
class WorkflowModel
{
  public:
    /** Build with the tuned default matrix. */
    WorkflowModel();

    /** Build with a custom matrix; rows must sum to ~1. */
    explicit WorkflowModel(const WorkflowMatrix &matrix);

    const WorkflowMatrix &matrix() const { return matrix_; }

    /** One transition: the class of the user's next job. */
    Lifecycle next(Lifecycle current, Rng &rng) const;

    /**
     * A whole project session: starts in the design stage (IDE) and
     * walks `jobs` transitions.
     */
    std::vector<Lifecycle> session(std::size_t jobs, Rng &rng) const;

    /**
     * Stationary distribution via power iteration — the long-run job
     * mix a population of such users produces.
     */
    std::array<double, num_lifecycles> stationary(int iterations = 3000)
        const;

  private:
    WorkflowMatrix matrix_;
};

} // namespace aiwc::workload

