/**
 * @file
 * Non-homogeneous Poisson arrival process: a base rate modulated by a
 * diurnal cycle, a weekend dip, and conference-deadline surges — the
 * load dynamics Sec. II reports ("usage of the system often increases
 * closer to the deadlines of popular deep learning conferences").
 */

#pragma once

#include <vector>

#include "aiwc/common/rng.hh"
#include "aiwc/workload/calibration.hh"

namespace aiwc::workload
{

/** Generates submission instants over the study period. */
class ArrivalProcess
{
  public:
    /**
     * @param params shape of the load.
     * @param total_jobs expected arrivals; <= 0 means params.total_jobs.
     */
    explicit ArrivalProcess(const ArrivalParams &params,
                            int total_jobs = 0);

    /** Relative (unitless) load modulation at time t. */
    double modulationAt(Seconds t) const;

    /** Absolute arrival rate at time t, jobs per second. */
    double rateAt(Seconds t) const { return base_rate_ * modulationAt(t); }

    /** Peak rate bound used for thinning. */
    double maxRate() const { return base_rate_ * max_modulation_; }

    /** Sample every arrival instant over [0, study length), sorted. */
    std::vector<Seconds> generate(Rng &rng) const;

    Seconds studySeconds() const { return params_.study_days * one_day; }

  private:
    ArrivalParams params_;
    int total_jobs_;
    double base_rate_ = 0.0;
    double max_modulation_ = 1.0;
};

} // namespace aiwc::workload

