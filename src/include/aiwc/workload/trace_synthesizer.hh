/**
 * @file
 * End-to-end trace synthesis: users -> arrivals -> jobs -> scheduler
 * replay -> telemetry -> the merged study dataset.
 *
 * This is the closed loop DESIGN.md describes: the produced Dataset is
 * exactly what the paper's instrumentation would have collected from a
 * system with the calibrated workload, including emergent quantities
 * (queue waits, GPU-hours concentration) that no generator parameter
 * sets directly.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "aiwc/core/dataset.hh"
#include "aiwc/sched/slurm_scheduler.hh"
#include "aiwc/telemetry/job_profile.hh"
#include "aiwc/workload/calibration.hh"

namespace aiwc::workload
{

/** Knobs of one synthesis run. */
struct SynthesisOptions
{
    std::uint64_t seed = 42;
    /**
     * Linear scale on the whole experiment: job volume, user count,
     * cluster size, and the time-series subset all scale together, so
     * the load/capacity ratio — and with it the queue-wait physics —
     * is preserved. 1.0 reproduces the paper's 125-day study.
     */
    double scale = 1.0;
    /**
     * Replay through the Slurm-like scheduler (queue waits emerge).
     * When false, jobs start at their submit instant — faster, for
     * analyses that do not involve waiting.
     */
    bool through_scheduler = true;
    /** Generate GPU telemetry (off for scheduling-only studies). */
    bool telemetry = true;
};

/** Everything one synthesis run produced. */
struct SynthesisResult
{
    core::Dataset dataset;
    /** Ground-truth telemetry profiles, indexed by JobId. */
    std::vector<telemetry::JobProfile> profiles;
    sched::SchedulerStats scheduler_stats;
    int num_users = 0;
    int cluster_nodes = 0;
    /** Monitoring data-path accounting (Sec. II lessons). */
    std::uint64_t central_store_bytes = 0;
    std::uint64_t peak_spool_bytes = 0;
};

/** Runs the full synthesis pipeline. */
class TraceSynthesizer
{
  public:
    TraceSynthesizer(const CalibrationProfile &profile,
                     const SynthesisOptions &options);

    /** Produce one complete trace. Deterministic in (profile, seed). */
    SynthesisResult run() const;

    /**
     * Produce @p count independent replicate traces, fanned across the
     * global thread pool. Replicate r uses replicateSeed(seed, r), so
     * the result vector is deterministic in (profile, options, count)
     * for any thread count, and replicate 0 matches run().
     */
    std::vector<SynthesisResult> runReplicates(int count) const;

    /**
     * Seed of replicate @p replicate of a base seed. Replicate 0 is
     * the base seed itself; later replicates are a splitmix64-style
     * mix so nearby replicate indices give uncorrelated streams.
     */
    static std::uint64_t replicateSeed(std::uint64_t base, int replicate);

    /** Scaled counts this run will use (exposed for tests). */
    int scaledUsers() const;
    int scaledNodes() const;
    int scaledTimeseriesJobs() const;

  private:
    CalibrationProfile profile_;
    SynthesisOptions options_;
};

} // namespace aiwc::workload

