/**
 * @file
 * End-to-end trace synthesis: users -> arrivals -> jobs -> scheduler
 * replay -> telemetry -> the merged study dataset.
 *
 * This is the closed loop DESIGN.md describes: the produced Dataset is
 * exactly what the paper's instrumentation would have collected from a
 * system with the calibrated workload, including emergent quantities
 * (queue waits, GPU-hours concentration) that no generator parameter
 * sets directly.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "aiwc/core/dataset.hh"
#include "aiwc/sched/slurm_scheduler.hh"
#include "aiwc/telemetry/job_profile.hh"
#include "aiwc/workload/calibration.hh"

namespace aiwc::workload
{

/** Knobs of one synthesis run. */
struct SynthesisOptions
{
    std::uint64_t seed = 42;
    /**
     * Linear scale on the whole experiment: job volume, user count,
     * cluster size, and the time-series subset all scale together, so
     * the load/capacity ratio — and with it the queue-wait physics —
     * is preserved. 1.0 reproduces the paper's 125-day study.
     */
    double scale = 1.0;
    /**
     * Replay through the Slurm-like scheduler (queue waits emerge).
     * When false, jobs start at their submit instant — faster, for
     * analyses that do not involve waiting.
     */
    bool through_scheduler = true;
    /** Generate GPU telemetry (off for scheduling-only studies). */
    bool telemetry = true;
};

/** Everything one synthesis run produced. */
struct SynthesisResult
{
    core::Dataset dataset;
    /** Ground-truth telemetry profiles, indexed by JobId. */
    std::vector<telemetry::JobProfile> profiles;
    sched::SchedulerStats scheduler_stats;
    int num_users = 0;
    int cluster_nodes = 0;
    /** Monitoring data-path accounting (Sec. II lessons). */
    std::uint64_t central_store_bytes = 0;
    std::uint64_t peak_spool_bytes = 0;
};

/**
 * Receives each finished JobRecord as the replay emits it (streaming
 * replay mode). The record is moved in; the sink owns it.
 */
using RecordSink = std::function<void(core::JobRecord &&)>;

/**
 * What a streaming replay reports when no Dataset is materialized:
 * the run-level aggregates of SynthesisResult minus the records
 * themselves (those went to the sink) and the telemetry profiles
 * (internal scaffolding of the run).
 */
struct StreamReplayResult
{
    /** Records pushed into the sink. */
    std::uint64_t records = 0;
    sched::SchedulerStats scheduler_stats;
    int num_users = 0;
    int cluster_nodes = 0;
    std::uint64_t central_store_bytes = 0;
    std::uint64_t peak_spool_bytes = 0;
};

/** Runs the full synthesis pipeline. */
class TraceSynthesizer
{
  public:
    TraceSynthesizer(const CalibrationProfile &profile,
                     const SynthesisOptions &options);

    /** Produce one complete trace. Deterministic in (profile, seed). */
    SynthesisResult run() const;

    /**
     * Streaming replay: identical simulation to run(), but each
     * JobRecord is pushed into @p sink the moment the scheduler epilog
     * (or the no-scheduler fast path) finishes it, and no Dataset is
     * ever materialized — the peak record footprint is one job. Record
     * values match run()'s exactly for the same (profile, seed);
     * emission order is the replay's completion order (submit order
     * when through_scheduler is off), deterministic for a fixed seed.
     */
    StreamReplayResult runStreaming(const RecordSink &sink) const;

    /**
     * Produce @p count independent replicate traces, fanned across the
     * global thread pool. Replicate r uses replicateSeed(seed, r), so
     * the result vector is deterministic in (profile, options, count)
     * for any thread count, and replicate 0 matches run().
     */
    std::vector<SynthesisResult> runReplicates(int count) const;

    /**
     * Seed of replicate @p replicate of a base seed. Replicate 0 is
     * the base seed itself; later replicates are a splitmix64-style
     * mix so nearby replicate indices give uncorrelated streams.
     */
    static std::uint64_t replicateSeed(std::uint64_t base, int replicate);

    /** Scaled counts this run will use (exposed for tests). */
    int scaledUsers() const;
    int scaledNodes() const;
    int scaledTimeseriesJobs() const;

  private:
    /**
     * The shared synthesis body: generate, replay, and hand every
     * finished record to @p sink. Fills every SynthesisResult field
     * except the dataset, which is the sink's business.
     */
    void runImpl(SynthesisResult &result, const RecordSink &sink) const;

    CalibrationProfile profile_;
    SynthesisOptions options_;
};

} // namespace aiwc::workload

