/**
 * @file
 * Fig. 12 analysis: Spearman correlation between a user's activity
 * (#jobs, GPU-hours) and their behaviour features (average and CoV of
 * runtime and utilization). The paper's finding: expert users have
 * higher average utilization (strong positive rho) but are no more
 * predictable (weak rho against the CoVs).
 */

#pragma once

#include <array>
#include <string>
#include <vector>

#include "aiwc/core/user_behavior_analyzer.hh"
#include "aiwc/stats/correlation.hh"

namespace aiwc::core
{

/** The per-user behaviour features Fig. 12 correlates against. */
enum class UserFeature : std::uint8_t
{
    AvgRuntime,
    AvgSm,
    AvgMembw,
    CovRuntime,
    CovSm,
    CovMembw,
};

inline constexpr int num_user_features = 6;

const char *toString(UserFeature f);

/** Correlations of one activity measure against all features. */
struct ActivityCorrelations
{
    std::string activity;  //!< "#jobs" or "GPU-hours"
    std::array<stats::Correlation, num_user_features> features{};
};

/** The full Fig. 12 table. */
struct CorrelationReport
{
    ActivityCorrelations by_jobs;
    ActivityCorrelations by_gpu_hours;
    std::size_t users = 0;
};

/** Computes Fig. 12 from per-user summaries. */
class CorrelationAnalyzer
{
  public:
    /** @param min_jobs users with fewer jobs are excluded (CoVs need
     *  a sample). */
    explicit CorrelationAnalyzer(std::size_t min_jobs = 3)
        : min_jobs_(min_jobs) {}

    CorrelationReport analyze(const Dataset &dataset) const;
    CorrelationReport
    analyze(const std::vector<UserSummary> &summaries) const;

  private:
    std::size_t min_jobs_;
};

} // namespace aiwc::core

