/**
 * @file
 * Fig. 9 analysis: per-job average and maximum GPU power draw, and the
 * impact of hypothetical power caps (the over-provisioning what-if of
 * Sec. III).
 */

#pragma once

#include <vector>

#include "aiwc/core/dataset.hh"
#include "aiwc/stats/ecdf.hh"

namespace aiwc::core
{

/** Job-impact classification under one power cap (Fig. 9b). */
struct PowerCapImpact
{
    double cap_watts = 0.0;
    /** Fraction never exceeding the cap, even at max draw. */
    double unimpacted = 0.0;
    /** Fraction whose max draw exceeds the cap (throttled sometimes). */
    double impacted_by_max = 0.0;
    /** Fraction whose *average* draw exceeds the cap (throttled
     *  persistently — real slowdowns). */
    double impacted_by_avg = 0.0;
};

/** The distributions and what-ifs of Fig. 9. */
struct PowerReport
{
    stats::EmpiricalCdf avg_watts;  //!< Fig. 9a, average draw per job
    stats::EmpiricalCdf max_watts;  //!< Fig. 9a, max draw per job
    std::vector<PowerCapImpact> caps;  //!< Fig. 9b
};

/** Computes Fig. 9 over the filtered GPU jobs. */
class PowerAnalyzer
{
  public:
    /** @param caps cap levels to evaluate (paper: 150/200/250 W). */
    explicit PowerAnalyzer(std::vector<double> caps = {150.0, 200.0,
                                                       250.0})
        : caps_(std::move(caps)) {}

    PowerReport analyze(const Dataset &dataset) const;

  private:
    std::vector<double> caps_;
};

} // namespace aiwc::core

