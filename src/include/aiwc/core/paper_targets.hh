/**
 * @file
 * Every number the paper publishes, in one place, for the benches
 * (paper-vs-measured columns) and the calibration tolerance tests.
 * References are to Li et al., "AI-Enabling Workloads on Large-Scale
 * GPU-Accelerated System", HPCA 2022.
 */

#pragma once

namespace aiwc::core::paper
{

// ---- Sec. II: dataset scale ----
inline constexpr int users = 191;
inline constexpr int total_jobs = 74820;
inline constexpr int gpu_jobs_after_filter = 47120;
inline constexpr double study_days = 125.0;
inline constexpr int timeseries_jobs = 2149;

// ---- Fig. 3a: runtime quantiles, minutes ----
inline constexpr double gpu_runtime_p25_min = 4.0;
inline constexpr double gpu_runtime_p50_min = 30.0;
inline constexpr double gpu_runtime_p75_min = 300.0;
inline constexpr double cpu_runtime_p50_min = 8.0;

// ---- Fig. 3b: queue waits ----
// >50% of GPU jobs wait <2% of their service time.
inline constexpr double gpu_wait_service_pct_median_max = 2.0;
// 70% of GPU jobs wait < 1 minute; 70% of CPU jobs wait > 1 minute.
inline constexpr double gpu_wait_under_1min_frac = 0.70;
inline constexpr double cpu_wait_over_1min_frac = 0.70;

// ---- Fig. 4a: mean utilization medians (percent) ----
inline constexpr double sm_util_median_pct = 16.0;
inline constexpr double membw_util_median_pct = 2.0;
inline constexpr double memsize_util_median_pct = 9.0;
// Fractions of jobs above 50% mean utilization.
inline constexpr double sm_over_50_frac = 0.20;
inline constexpr double membw_over_50_frac = 0.04;
inline constexpr double memsize_over_50_frac = 0.15;

// ---- Fig. 5: interface mix ----
inline constexpr double mapreduce_job_frac = 0.01;
inline constexpr double batch_job_frac = 0.30;
inline constexpr double interactive_job_frac = 0.04;
inline constexpr double other_job_frac = 0.65;

// ---- Fig. 6: phases (time-series subset) ----
inline constexpr double active_frac_p25_pct = 14.0;
inline constexpr double active_frac_p50_pct = 84.0;
inline constexpr double active_frac_p75_pct = 95.0;
inline constexpr double idle_interval_cov_median_pct = 126.0;
inline constexpr double active_interval_cov_median_pct = 169.0;

// ---- Fig. 7a: within-active-phase utilization CoV medians ----
inline constexpr double active_sm_cov_median_pct = 14.0;
inline constexpr double active_membw_cov_median_pct = 14.6;
inline constexpr double active_memsize_cov_median_pct = 8.2;
// >25% of jobs have SM CoV of 23% or higher.
inline constexpr double sm_cov_p75_pct = 23.0;

// ---- Figs. 7b / 8: bottleneck fractions ----
inline constexpr double sm_bottleneck_frac = 0.22;
inline constexpr double membw_bottleneck_frac = 0.005;
inline constexpr double rx_and_sm_bottleneck_frac = 0.09;
inline constexpr double any_pair_bottleneck_max_frac = 0.10;

// ---- Fig. 9: power ----
inline constexpr double power_avg_median_w = 45.0;
inline constexpr double power_max_median_w = 87.0;
inline constexpr double v100_tdp_w = 300.0;
// At a 150 W cap, >60% of jobs are unimpacted even by their max draw,
// and <10% are impacted by their average draw.
inline constexpr double cap150_unimpacted_min_frac = 0.60;
inline constexpr double cap150_avg_impacted_max_frac = 0.10;

// ---- Fig. 10: per-user averages ----
inline constexpr double user_avg_runtime_p25_min = 135.0;
inline constexpr double user_avg_runtime_p50_min = 392.0;
inline constexpr double user_avg_runtime_p75_min = 823.0;
inline constexpr double user_avg_sm_median_pct = 10.75;
inline constexpr double user_avg_membw_median_pct = 1.8;
inline constexpr double user_avg_memsize_median_pct = 11.2;
inline constexpr double user_sm_over20_frac = 0.32;
inline constexpr double user_membw_over20_frac = 0.05;

// ---- Fig. 11: per-user CoVs (percent) ----
inline constexpr double user_runtime_cov_p25_pct = 86.0;
inline constexpr double user_runtime_cov_p50_pct = 155.0;
inline constexpr double user_runtime_cov_p75_pct = 227.0;
inline constexpr double user_sm_cov_median_pct = 121.0;
inline constexpr double user_membw_cov_median_pct = 182.0;
inline constexpr double user_memsize_cov_median_pct = 99.0;

// ---- Fig. 12: Spearman correlations (qualitative bands) ----
// #jobs / GPU-hours vs average SM & memBW utilization: high positive.
inline constexpr double activity_vs_avg_util_rho_min = 0.5;
// #jobs / GPU-hours vs utilization CoV: low (< 0.5).
inline constexpr double activity_vs_cov_rho_max = 0.5;

// ---- Sec. IV: user concentration ----
inline constexpr double top5pct_user_job_share = 0.44;
inline constexpr double top20pct_user_job_share = 0.832;
inline constexpr double median_jobs_per_user = 36.0;

// ---- Fig. 13 / Sec. V: multi-GPU ----
inline constexpr double single_gpu_job_frac = 0.84;
inline constexpr double over2_gpu_job_frac = 0.024;
inline constexpr double over8_gpu_job_frac = 0.01;   // "<1%"
inline constexpr double multi_gpu_hour_share = 0.50;
inline constexpr double users_with_multi_gpu = 0.60;
inline constexpr double users_with_3plus_gpu = 0.13;
inline constexpr double users_with_9plus_gpu = 0.052;
// Median queue waits by size (seconds): 1-GPU 3 s, larger ~1 s.
inline constexpr double wait_median_1gpu_s = 3.0;
inline constexpr double wait_median_multi_s = 1.0;
// ~40% of multi-GPU jobs leave half or more of their GPUs idle.
inline constexpr double multi_gpu_idle_frac = 0.40;

// ---- Fig. 15: lifecycle mixes ----
inline constexpr double mature_job_frac = 0.595;
inline constexpr double exploratory_job_frac = 0.18;
inline constexpr double development_job_frac = 0.19;
inline constexpr double ide_job_frac = 0.035;
inline constexpr double mature_hour_frac = 0.39;
inline constexpr double exploratory_hour_frac = 0.34;
inline constexpr double ide_hour_frac = 0.182;
inline constexpr double mature_runtime_median_min = 36.0;
inline constexpr double exploratory_runtime_median_min = 62.0;

// ---- Fig. 16: per-class median SM utilization (percent) ----
inline constexpr double mature_sm_median_pct = 21.0;
inline constexpr double exploratory_sm_median_pct = 15.0;
inline constexpr double development_sm_median_pct = 0.0;
inline constexpr double ide_sm_median_pct = 0.0;

// ---- Fig. 17: per-user lifecycle shares ----
// >50% of users have a mature-job share below 40%.
inline constexpr double users_mature_share_below_40 = 0.50;
// >50% of users have a mature GPU-hour share below 20%.
inline constexpr double users_mature_hours_below_20 = 0.50;
// >25% of users spend over 60% of their GPU-hours on
// exploratory + development + IDE jobs.
inline constexpr double users_nonmature_hours_over_60 = 0.25;

} // namespace aiwc::core::paper

