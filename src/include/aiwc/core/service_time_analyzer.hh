/**
 * @file
 * Fig. 3 analysis: runtime and queue-wait distributions of GPU vs.
 * CPU jobs, and waits as a percentage of service time.
 */

#pragma once

#include "aiwc/core/dataset.hh"
#include "aiwc/stats/ecdf.hh"

namespace aiwc::core
{

/** The distributions of Fig. 3, minutes and percent units. */
struct ServiceTimeReport
{
    stats::EmpiricalCdf gpu_runtime_min;  //!< runtimes, minutes
    stats::EmpiricalCdf cpu_runtime_min;
    stats::EmpiricalCdf gpu_wait_s;       //!< queue waits, seconds
    stats::EmpiricalCdf cpu_wait_s;
    stats::EmpiricalCdf gpu_wait_pct;     //!< wait as % of service time
    stats::EmpiricalCdf cpu_wait_pct;

    /** Fraction of GPU jobs waiting less than the given seconds. */
    double gpuWaitUnder(double seconds) const
    {
        return gpu_wait_s.at(seconds);
    }

    /** Fraction of CPU jobs waiting more than the given seconds. */
    double cpuWaitOver(double seconds) const
    {
        return 1.0 - cpu_wait_s.at(seconds);
    }
};

/** Computes Fig. 3 over the dataset (GPU jobs filtered at 30 s). */
class ServiceTimeAnalyzer
{
  public:
    ServiceTimeReport analyze(const Dataset &dataset) const;
};

} // namespace aiwc::core

