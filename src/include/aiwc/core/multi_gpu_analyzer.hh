/**
 * @file
 * Sec. V analysis (Figs. 13-14): how many jobs and GPU-hours multi-GPU
 * jobs account for, how many users run them, their queue waits, and
 * the balance of utilization across a job's GPUs (with and without the
 * idle-GPU pathology).
 */

#pragma once

#include <array>

#include "aiwc/core/dataset.hh"
#include "aiwc/stats/ecdf.hh"

namespace aiwc::core
{

/** Size buckets of Fig. 13: 1, 2, 3-8, >= 9 GPUs. */
inline constexpr int num_size_buckets = 4;

const char *sizeBucketName(int bucket);

/** Map a GPU count to its Fig. 13 bucket. */
int sizeBucketOf(int gpus);

/** The Fig. 13 / Fig. 14 report. */
struct MultiGpuReport
{
    /** Fraction of jobs per size bucket (Fig. 13a). */
    std::array<double, num_size_buckets> job_fraction{};
    /** Fraction of GPU-hours per size bucket (Fig. 13b). */
    std::array<double, num_size_buckets> hour_fraction{};
    /** Median queue wait per size bucket, seconds (Sec. V). */
    std::array<double, num_size_buckets> median_wait_s{};

    /** Fraction of users who ran >= 1 multi-GPU / >=3 / >=9 GPU job. */
    double users_multi = 0.0;
    double users_3plus = 0.0;
    double users_9plus = 0.0;

    /** Fraction of multi-GPU jobs with half or more GPUs idle. */
    double idle_gpu_job_fraction = 0.0;

    /** Fig. 14a: CoV (%) across all GPUs of a multi-GPU job. */
    stats::EmpiricalCdf sm_cov_all_pct;
    stats::EmpiricalCdf membw_cov_all_pct;
    stats::EmpiricalCdf memsize_cov_all_pct;
    /** Fig. 14b: same with idle GPUs removed. */
    stats::EmpiricalCdf sm_cov_active_pct;
    stats::EmpiricalCdf membw_cov_active_pct;
    stats::EmpiricalCdf memsize_cov_active_pct;
};

/** Computes the multi-GPU report over filtered GPU jobs. */
class MultiGpuAnalyzer
{
  public:
    MultiGpuReport analyze(const Dataset &dataset) const;
};

} // namespace aiwc::core

