/**
 * @file
 * Text rendering of every analyzer report — the library's equivalent
 * of the paper's figures. Each printer emits the series the figure
 * plots, so benches and examples share one presentation.
 */

#pragma once

#include <ostream>

#include "aiwc/core/bottleneck_analyzer.hh"
#include "aiwc/core/correlation_analyzer.hh"
#include "aiwc/core/lifecycle_analyzer.hh"
#include "aiwc/core/multi_gpu_analyzer.hh"
#include "aiwc/core/phase_analyzer.hh"
#include "aiwc/core/power_analyzer.hh"
#include "aiwc/core/service_time_analyzer.hh"
#include "aiwc/core/timeline_analyzer.hh"
#include "aiwc/core/user_behavior_analyzer.hh"
#include "aiwc/core/utilization_analyzer.hh"

namespace aiwc::core
{

/** Quantile levels printed for every CDF table. */
inline constexpr std::array<double, 5> report_quantiles = {0.10, 0.25,
                                                           0.50, 0.75,
                                                           0.90};

/** Renders analyzer reports as aligned text tables. */
class ReportWriter
{
  public:
    explicit ReportWriter(std::ostream &os) : os_(os) {}

    void print(const ServiceTimeReport &r) const;       // Fig. 3
    void print(const UtilizationReport &r) const;       // Fig. 4
    void print(const InterfaceUtilization &r) const;    // Fig. 5
    void print(const PhaseReport &r) const;             // Figs. 6-7a
    void print(const BottleneckReport &r) const;        // Figs. 7b-8
    void print(const PowerReport &r) const;             // Fig. 9
    void print(const UserBehaviorReport &r) const;      // Figs. 10-11
    void print(const CorrelationReport &r) const;       // Fig. 12
    void print(const MultiGpuReport &r) const;          // Figs. 13-14
    void print(const LifecycleReport &r) const;         // Figs. 15-17
    void print(const TimelineReport &r) const;          // Sec. II load

    /** Print everything for a dataset (the full study report). */
    void printFullStudy(const Dataset &dataset) const;

  private:
    std::ostream &os_;
};

} // namespace aiwc::core

