/**
 * @file
 * Figs. 7b and 8 analysis: which resources jobs saturate. A job has a
 * resource bottleneck when its maximum recorded usage of that resource
 * reaches the limit at any point during the run (Sec. III).
 */

#pragma once

#include <array>
#include <vector>

#include "aiwc/core/dataset.hh"

namespace aiwc::core
{

/** The five utilization resources that can bottleneck (no power). */
inline constexpr std::array<Resource, 5> bottleneck_resources = {
    Resource::Sm, Resource::MemoryBw, Resource::MemorySize,
    Resource::PcieTx, Resource::PcieRx,
};

/** Fractions of jobs bottlenecked per resource and per resource pair. */
struct BottleneckReport
{
    /** Fig. 7b / 8a: fraction bottlenecked on each single resource,
     *  indexed as bottleneck_resources. */
    std::array<double, 5> single{};
    /** Fig. 8b: fraction bottlenecked on both resources of each pair,
     *  upper-triangular (i < j) indexed by pairIndex(). */
    std::array<double, 10> pairs{};
    std::size_t jobs = 0;

    /** Index into `pairs` for resources i < j (positions within
     *  bottleneck_resources). */
    static std::size_t pairIndex(std::size_t i, std::size_t j);

    double single_of(Resource r) const;
    double pair_of(Resource a, Resource b) const;
};

/** Computes the bottleneck report from per-job max summaries. */
class BottleneckAnalyzer
{
  public:
    /** @param threshold utilization (fraction) counted as saturated. */
    explicit BottleneckAnalyzer(double threshold = 0.995)
        : threshold_(threshold) {}

    BottleneckReport analyze(const Dataset &dataset) const;

  private:
    double threshold_;
};

} // namespace aiwc::core

