/**
 * @file
 * The study dataset: every merged job record plus the filters and
 * group-bys the analyzers share.
 *
 * Mirrors the paper's methodology (Sec. II): the raw dataset holds all
 * submissions; GPU analysis considers only GPU jobs that ran at least
 * 30 seconds (74,820 -> 47,120 in the paper).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <span>
#include <vector>

#include "aiwc/core/columns.hh"
#include "aiwc/core/job_record.hh"

namespace aiwc::core
{

/**
 * The collection of job records for one study period.
 *
 * Storage is dual-layout: the row vector (records()) remains the API
 * for callers that walk whole records, while a struct-of-arrays
 * ColumnTable (columns()) mirrors every scalar field for the
 * analyzers' columnar kernels. Both views are kept in lockstep by
 * add(); filters hand out row indices (gpuJobIndices) that address
 * either view, so migrated and unmigrated callers see the same rows
 * in the same order.
 */
class Dataset
{
  public:
    Dataset() = default;
    explicit Dataset(std::vector<JobRecord> records);

    void add(JobRecord record);

    const std::vector<JobRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    /** The struct-of-arrays view (always in sync with records()). */
    const ColumnTable &columns() const { return cols_; }

    /**
     * Row indices of GPU jobs with runtime >= min_runtime (the
     * paper's filter), in record order. The columnar analog of
     * gpuJobs(): index either view with the result.
     */
    std::vector<std::uint32_t>
    gpuJobIndices(Seconds min_runtime = 30.0) const;

    /** Row indices of CPU-only jobs, in record order. */
    std::vector<std::uint32_t> cpuJobIndices() const;

    /**
     * Deterministic contiguous shard views over all records, in record
     * order. The shard geometry depends only on the record count (see
     * aiwc/common/parallel.hh), so per-shard passes merged in shard
     * order reproduce the serial result bit-for-bit regardless of how
     * many threads executed them.
     */
    std::vector<std::span<const JobRecord>> shards() const;

    /** All GPU jobs with runtime >= min_runtime (the paper's filter). */
    std::vector<const JobRecord *>
    gpuJobs(Seconds min_runtime = 30.0) const;

    /** All CPU-only jobs (no runtime filter; used only in Fig. 3). */
    std::vector<const JobRecord *> cpuJobs() const;

    /** GPU jobs matching a predicate (after the 30 s filter). */
    std::vector<const JobRecord *>
    gpuJobsWhere(const std::function<bool(const JobRecord &)> &pred,
                 Seconds min_runtime = 30.0) const;

    /** Filtered GPU jobs grouped by user, ordered by user id. */
    std::map<UserId, std::vector<const JobRecord *>>
    gpuJobsByUser(Seconds min_runtime = 30.0) const;

    /** Number of distinct users across all records. */
    std::size_t uniqueUsers() const;

    /** Total GPU-hours over filtered GPU jobs. */
    double totalGpuHours(Seconds min_runtime = 30.0) const;

    /**
     * Export the per-job summary table as CSV (one row per record),
     * for cross-checking against a Pandas pipeline.
     */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<JobRecord> records_;
    ColumnTable cols_;
};

} // namespace aiwc::core

