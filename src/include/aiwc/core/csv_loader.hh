/**
 * @file
 * CSV dataset loading — the drop-in path for real study data.
 *
 * Reads the per-job summary format Dataset::writeCsv emits (which
 * mirrors the fields the paper's merged Slurm + nvidia-smi dataset
 * carries). What the summary CSV cannot carry is noted explicitly:
 * per-GPU breakdowns collapse to the across-GPU average, sample
 * minima default to 0, and time-series phase statistics are absent.
 * All fleet-level analyses (Figs. 3-5, 8-13, 15-17) work on a loaded
 * dataset; the phase analyses (Figs. 6-7a) need the detailed subset.
 */

#pragma once

#include <istream>

#include "aiwc/core/dataset.hh"

namespace aiwc::core
{

/**
 * Parse a dataset from the writeCsv format.
 * Throws nothing; calls fatal() on malformed headers, skips (with a
 * warning) rows with the wrong cell count.
 */
Dataset loadDatasetCsv(std::istream &is);

/** Parse an Interface name as written by toString(). */
Interface interfaceFromString(const std::string &name);

/** Parse a TerminalState name as written by toString(). */
TerminalState terminalFromString(const std::string &name);

} // namespace aiwc::core

