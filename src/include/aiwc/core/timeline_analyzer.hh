/**
 * @file
 * Fleet timeline analysis: submissions, GPU demand, and queue waits
 * over the study period. Makes Sec. II's operational observations
 * measurable — "usage of the system often increases closer to the
 * deadlines of popular deep learning conferences" — and gives
 * operators the load curves behind the per-job figures.
 */

#pragma once

#include <vector>

#include "aiwc/core/dataset.hh"

namespace aiwc::core
{

/** One time bin of the fleet timeline. */
struct TimelineBin
{
    Seconds start = 0.0;
    /** Jobs submitted in this bin. */
    std::size_t submissions = 0;
    /** Mean GPUs in use across the bin. */
    double mean_gpus_busy = 0.0;
    /** Mean whole nodes held by CPU jobs across the bin. */
    double mean_cpu_nodes_busy = 0.0;
};

/** The fleet timeline plus the headline load statistics. */
struct TimelineReport
{
    Seconds bin_width = one_day;
    std::vector<TimelineBin> bins;

    /** Peak / mean submission rate across bins (burstiness). */
    double submission_peak_to_mean = 0.0;
    /** Peak GPUs busy at any bin. */
    double peak_gpus_busy = 0.0;
    /**
     * Deadline surge factor: the highest bin-submission count within
     * the given windows divided by the median bin outside them.
     */
    double deadlineSurge(const std::vector<double> &deadline_days,
                         double window_days = 10.0) const;
};

/** Computes the fleet timeline from a dataset. */
class TimelineAnalyzer
{
  public:
    explicit TimelineAnalyzer(Seconds bin_width = one_day)
        : bin_width_(bin_width) {}

    TimelineReport analyze(const Dataset &dataset) const;

  private:
    Seconds bin_width_;
};

} // namespace aiwc::core

