/**
 * @file
 * Interned identifier table: a bijection between sparse 32-bit raw
 * ids (user ids, job-type keys) and dense indices assigned in first-
 * appearance order.
 *
 * The columnar Dataset stores a dense index per row instead of the
 * raw id, so per-user aggregations become array indexing instead of
 * map lookups, and the on-disk trace format ships one small id table
 * plus a u32 column. Dense ids are deterministic: they depend only on
 * the order rows were appended, never on hash iteration order, so the
 * same trace always interns to the same table. Merging two tables
 * (shard merges) preserves every dense id already assigned in the
 * receiving table and appends the donor's unseen raw ids in the
 * donor's dense order — ids are stable under merge.
 */

#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace aiwc::core
{

/** Insertion-ordered intern table for 32-bit identifiers. */
class IdTable
{
  public:
    /**
     * Dense id of @p raw, interning it if unseen. The first distinct
     * raw id gets dense id 0, the second 1, and so on.
     */
    std::uint32_t intern(std::uint32_t raw);

    /** Dense id of @p raw, or invalid_id when never interned. */
    std::uint32_t denseOf(std::uint32_t raw) const;

    /** Raw id behind dense id @p dense (AIWC_CHECK: in range). */
    std::uint32_t rawOf(std::uint32_t dense) const;

    /** Number of distinct interned ids. */
    std::size_t size() const { return raw_ids_.size(); }

    bool empty() const { return raw_ids_.empty(); }

    /** The dense -> raw mapping, in dense-id order. */
    std::span<const std::uint32_t> rawIds() const { return raw_ids_; }

    /**
     * Union-merge: intern every id of @p other (in other's dense
     * order) into this table. Existing dense ids in this table are
     * untouched; other's unseen ids append. @return the remap vector
     * m with m[other_dense] == this_dense for every id of other.
     */
    std::vector<std::uint32_t> mergeFrom(const IdTable &other);

    /**
     * Rebuild a table from a dense -> raw vector (the on-disk
     * representation). Duplicate raw ids make the table ill-formed;
     * the caller must validate untrusted input first (the fmt reader
     * does) — here a duplicate is an AIWC_CHECK violation.
     */
    static IdTable fromRawIds(std::span<const std::uint32_t> raw_ids);

  private:
    std::vector<std::uint32_t> raw_ids_;  //!< dense -> raw
    // Point lookups only — never iterated, so hash order is
    // unobservable and determinism is preserved.
    std::unordered_map<std::uint32_t, std::uint32_t> dense_of_;
};

} // namespace aiwc::core
