/**
 * @file
 * Sec. IV analysis (Figs. 10-11): per-user averages and within-user
 * variability of runtime and utilization, plus the activity
 * concentration ("top 5% of users submit 44% of jobs").
 */

#pragma once

#include <vector>

#include "aiwc/core/dataset.hh"
#include "aiwc/stats/ecdf.hh"

namespace aiwc::core
{

/** Aggregates of one user's filtered GPU jobs. */
struct UserSummary
{
    UserId user = invalid_id;
    std::size_t jobs = 0;
    double gpu_hours = 0.0;

    double avg_runtime_min = 0.0;
    double avg_sm_pct = 0.0;
    double avg_membw_pct = 0.0;
    double avg_memsize_pct = 0.0;

    /** Within-user CoVs, percent (Fig. 11); need >= 2 jobs. NaN when
     *  the user's series has zero mean (stats::covPercent convention);
     *  CDF/correlation consumers filter non-finite values. */
    double runtime_cov_pct = 0.0;
    double sm_cov_pct = 0.0;
    double membw_cov_pct = 0.0;
    double memsize_cov_pct = 0.0;
};

/** The distributions of Figs. 10-11 plus concentration stats. */
struct UserBehaviorReport
{
    std::vector<UserSummary> users;  //!< one entry per active user

    stats::EmpiricalCdf avg_runtime_min;   //!< Fig. 10
    stats::EmpiricalCdf avg_sm_pct;
    stats::EmpiricalCdf avg_membw_pct;
    stats::EmpiricalCdf avg_memsize_pct;

    stats::EmpiricalCdf runtime_cov_pct;   //!< Fig. 11
    stats::EmpiricalCdf sm_cov_pct;
    stats::EmpiricalCdf membw_cov_pct;
    stats::EmpiricalCdf memsize_cov_pct;

    /** Share of jobs submitted by the top 5% / 20% of users. */
    double top5_job_share = 0.0;
    double top20_job_share = 0.0;
    double median_jobs_per_user = 0.0;
};

/** Computes the per-user report over filtered GPU jobs. */
class UserBehaviorAnalyzer
{
  public:
    /** @param min_jobs_for_cov users below this skip the CoV CDFs. */
    explicit UserBehaviorAnalyzer(std::size_t min_jobs_for_cov = 2)
        : min_jobs_for_cov_(min_jobs_for_cov) {}

    UserBehaviorReport analyze(const Dataset &dataset) const;

    /** Just the per-user summaries (reused by the correlation pass). */
    std::vector<UserSummary> summarize(const Dataset &dataset) const;

  private:
    std::size_t min_jobs_for_cov_;
};

} // namespace aiwc::core

