/**
 * @file
 * The paper's novel job classification (Sec. VI): every job lands in
 * one of four algorithm-development life-cycle stages, inferred from
 * what the scheduler observed — exactly the signals the paper uses:
 *
 *   mature       — completed with exit code 0;
 *   exploratory  — cancelled by the user before completion (the
 *                  hyper-parameter probes deemed sub-optimal);
 *   development  — runtime failure (nonzero exit) while debugging;
 *   IDE          — ran until the wall-time limit (interactive
 *                  sessions that time out at 12 h / 24 h).
 *
 * The classifier never sees the generator's ground-truth label; the
 * test suite checks the inferred labels against it.
 */

#pragma once

#include <array>

#include "aiwc/core/dataset.hh"

namespace aiwc::core
{

/** Stateless classifier over observed terminal behaviour. */
class LifecycleClassifier
{
  public:
    /** Infer the lifecycle class of one job. */
    Lifecycle classify(const JobRecord &job) const;

    /** Fraction of (filtered GPU) jobs per inferred class (Fig. 15a). */
    std::array<double, num_lifecycles>
    jobMix(const Dataset &dataset) const;

    /** Fraction of GPU-hours per inferred class (Fig. 15b). */
    std::array<double, num_lifecycles>
    gpuHourMix(const Dataset &dataset) const;

    /**
     * Agreement with the generator ground truth, for validation only
     * (a production dataset has no ground truth).
     */
    double accuracyAgainstTruth(const Dataset &dataset) const;
};

} // namespace aiwc::core

