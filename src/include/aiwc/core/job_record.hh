/**
 * @file
 * The combined per-job record of the study dataset.
 *
 * The paper merges two sources by job id (Sec. II "Dataset
 * Description"): Slurm logs (scheduling, CPU-side) and nvidia-smi
 * profiles (GPU-side min/mean/max per metric). A JobRecord is exactly
 * that merged row, plus the optional detailed phase statistics that the
 * 100 ms time-series subset provides for ~2149 jobs.
 */

#pragma once

#include <vector>

#include "aiwc/common/types.hh"
#include "aiwc/stats/descriptive.hh"

namespace aiwc::core
{

/** Per-GPU min/mean/max summaries of every monitored metric. */
struct GpuUsageSummary
{
    stats::RunningSummary sm;           //!< SM utilization, [0,1]
    stats::RunningSummary membw;        //!< memory bandwidth util, [0,1]
    stats::RunningSummary memsize;      //!< memory amount used, [0,1]
    stats::RunningSummary pcie_tx;      //!< PCIe Tx bandwidth util, [0,1]
    stats::RunningSummary pcie_rx;      //!< PCIe Rx bandwidth util, [0,1]
    stats::RunningSummary power_watts;  //!< board power draw

    /** Access a utilization summary by resource axis. */
    const stats::RunningSummary &byResource(Resource r) const;
    stats::RunningSummary &byResource(Resource r);

    /** True when the GPU never did meaningful work (idle GPU, Sec. V). */
    bool idle(double sm_threshold = 0.01) const;
};

/**
 * Detailed phase statistics derived from the 100 ms time series;
 * present only for jobs in the time-series subset (Figs. 6, 7a).
 */
struct PhaseStats
{
    /** Fraction of the run spent in active phases. */
    double active_fraction = 0.0;
    /** Lengths of each active interval, seconds. */
    std::vector<double> active_intervals;
    /** Lengths of each idle interval, seconds. */
    std::vector<double> idle_intervals;
    /** CoV (%) of SM / memBW / memSize samples during active phases. */
    double active_sm_cov = 0.0;
    double active_membw_cov = 0.0;
    double active_memsize_cov = 0.0;
};

/** One row of the merged study dataset. */
struct JobRecord
{
    JobId id = invalid_id;
    UserId user = invalid_id;
    Interface interface = Interface::Other;
    TerminalState terminal = TerminalState::Completed;
    /** Generator ground truth; analyzers must not read it (tests do). */
    Lifecycle true_class = Lifecycle::Mature;

    Seconds submit_time = 0.0;
    Seconds start_time = 0.0;
    Seconds end_time = 0.0;
    Seconds walltime_limit = 0.0;

    int gpus = 0;  //!< 0 for CPU-only jobs
    int cpu_slots = 0;
    double ram_gb = 0.0;

    /** One summary per assigned GPU (empty for CPU jobs). */
    std::vector<GpuUsageSummary> per_gpu;

    /** Detailed phase stats; valid iff has_timeseries. */
    bool has_timeseries = false;
    PhaseStats phases;

    bool isGpuJob() const { return gpus > 0; }
    Seconds runTime() const { return end_time - start_time; }
    Seconds waitTime() const { return start_time - submit_time; }
    Seconds serviceTime() const { return end_time - submit_time; }
    double gpuHours() const { return gpus * runTime() / 3600.0; }

    /**
     * The paper's per-job single number for a utilization metric: the
     * average over the job's GPUs of the per-GPU mean (Sec. II
     * "General Methodology"). Zero for CPU jobs.
     */
    double meanUtilization(Resource r) const;

    /** Max over GPUs of the per-GPU max — bottleneck detection. */
    double maxUtilization(Resource r) const;

    /** Average across GPUs of mean power draw, watts. */
    double meanPowerWatts() const;

    /** Max across GPUs of max power draw, watts. */
    double maxPowerWatts() const;

    /** Number of this job's GPUs that stayed idle throughout. */
    int idleGpuCount(double sm_threshold = 0.01) const;
};

} // namespace aiwc::core

