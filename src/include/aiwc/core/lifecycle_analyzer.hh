/**
 * @file
 * Sec. VI analysis (Figs. 15-17): the resource footprint of the
 * algorithm-development life-cycle — job and GPU-hour mixes per class,
 * per-class utilization box plots, and the per-user class shares that
 * reveal the paradigm shift toward exploratory/development usage.
 */

#pragma once

#include <array>
#include <vector>

#include "aiwc/core/lifecycle_classifier.hh"
#include "aiwc/stats/descriptive.hh"

namespace aiwc::core
{

/** One user's share of jobs and GPU-hours per lifecycle class. */
struct UserClassShares
{
    UserId user = invalid_id;
    std::size_t jobs = 0;
    double gpu_hours = 0.0;
    /** Fraction of the user's jobs per class. */
    std::array<double, num_lifecycles> job_share{};
    /** Fraction of the user's GPU-hours per class. */
    std::array<double, num_lifecycles> hour_share{};
};

/** The full Sec. VI report. */
struct LifecycleReport
{
    /** Fig. 15a/b: fleet-level mixes. */
    std::array<double, num_lifecycles> job_mix{};
    std::array<double, num_lifecycles> hour_mix{};
    /** Median runtime per class, minutes. */
    std::array<double, num_lifecycles> median_runtime_min{};

    /** Fig. 16: utilization box stats per class (percent). */
    std::array<stats::BoxStats, num_lifecycles> sm_pct;
    std::array<stats::BoxStats, num_lifecycles> membw_pct;
    std::array<stats::BoxStats, num_lifecycles> memsize_pct;

    /** Fig. 17: per-user shares (unsorted; callers sort for plots). */
    std::vector<UserClassShares> users;

    /** Fraction of users whose mature *job* share is below `frac`. */
    double usersWithMatureJobShareBelow(double frac) const;
    /** Fraction of users whose mature *GPU-hour* share is below. */
    double usersWithMatureHourShareBelow(double frac) const;
    /** Fraction of users with non-mature GPU-hour share above. */
    double usersWithNonMatureHoursAbove(double frac) const;
};

/** Computes Figs. 15-17 using the lifecycle classifier. */
class LifecycleAnalyzer
{
  public:
    LifecycleReport analyze(const Dataset &dataset) const;

  private:
    LifecycleClassifier classifier_;
};

} // namespace aiwc::core

