/**
 * @file
 * Figs. 4-5 analysis: per-job mean GPU resource utilization CDFs, the
 * PCIe bandwidth CDFs, and utilization broken down by submission
 * interface.
 */

#pragma once

#include <array>

#include "aiwc/core/dataset.hh"
#include "aiwc/stats/descriptive.hh"
#include "aiwc/stats/ecdf.hh"

namespace aiwc::core
{

/** The distributions of Fig. 4, in percent of capacity. */
struct UtilizationReport
{
    stats::EmpiricalCdf sm_pct;
    stats::EmpiricalCdf membw_pct;
    stats::EmpiricalCdf memsize_pct;
    stats::EmpiricalCdf pcie_tx_pct;
    stats::EmpiricalCdf pcie_rx_pct;

    /** Fraction of jobs whose mean use of `r` exceeds `pct` percent. */
    double fractionAbove(Resource r, double pct) const;

    const stats::EmpiricalCdf &byResource(Resource r) const;
};

/** Fig. 5: per-interface utilization statistics. */
struct InterfaceUtilization
{
    /** Box statistics of mean SM utilization (%) per interface. */
    std::array<stats::BoxStats, num_interfaces> sm;
    /** Box statistics of mean memBW utilization (%) per interface. */
    std::array<stats::BoxStats, num_interfaces> membw;
    /** Fraction of jobs per interface. */
    std::array<double, num_interfaces> job_fraction{};
};

/** Computes Figs. 4-5 over the filtered GPU jobs. */
class UtilizationAnalyzer
{
  public:
    UtilizationReport analyze(const Dataset &dataset) const;
    InterfaceUtilization analyzeByInterface(const Dataset &dataset) const;
};

} // namespace aiwc::core

