/**
 * @file
 * Struct-of-arrays mirror of the study dataset: one contiguous column
 * per scalar field, plus interned user and job-type id tables.
 *
 * The batch analyzers are reductions over millions of rows, and the
 * row-oriented JobRecord layout makes every pass chase per_gpu
 * vectors through the heap. The ColumnTable flattens the hot scalars
 * — times, resource means/maxima, enums — into cache-dense arrays the
 * compiler can vectorize, and interns sparse user ids into dense
 * indices so per-user aggregation is array indexing, not map lookup.
 *
 * Derived columns are computed in append(), with exactly the
 * arithmetic (and evaluation order) of the JobRecord methods they
 * mirror, so a columnar kernel and a row walk produce bit-identical
 * doubles. The Dataset owns one ColumnTable and keeps it in lockstep
 * with its record vector; rows() always equals Dataset::size().
 */

#pragma once

#include <array>
#include <span>
#include <vector>

#include "aiwc/core/id_table.hh"
#include "aiwc/core/job_record.hh"

namespace aiwc::core
{

/**
 * A job type is the (interface, terminal-state) pair — the complete
 * scheduler-observable signature the lifecycle classifier and the
 * by-interface breakdowns key on. Packed into one u32 for interning.
 */
inline constexpr std::uint32_t
packJobType(Interface interface, TerminalState terminal)
{
    return (static_cast<std::uint32_t>(interface) << 8) |
           static_cast<std::uint32_t>(terminal);
}

/** Columnar (SoA) view of a job-record collection. */
class ColumnTable
{
  public:
    /** Append one record's fields to every column. */
    void append(const JobRecord &record);

    std::size_t rows() const { return submit_.size(); }
    bool empty() const { return submit_.empty(); }

    // --- raw scalar columns, one slot per row -----------------------
    std::span<const std::uint32_t> jobIds() const { return job_id_; }
    /** Dense user index per row; users().rawOf() recovers the id. */
    std::span<const std::uint32_t> userIndex() const { return user_idx_; }
    /** Dense job-type index per row (see packJobType). */
    std::span<const std::uint32_t> typeIndex() const { return type_idx_; }
    std::span<const std::uint8_t> interfaces() const { return interface_; }
    std::span<const std::uint8_t> terminals() const { return terminal_; }
    std::span<const std::uint8_t> trueClasses() const { return true_class_; }
    std::span<const std::uint8_t> hasTimeseries() const { return has_ts_; }
    std::span<const double> submitTime() const { return submit_; }
    std::span<const double> startTime() const { return start_; }
    std::span<const double> endTime() const { return end_; }
    std::span<const double> walltimeLimit() const { return walltime_; }
    std::span<const std::int32_t> gpus() const { return gpus_; }
    std::span<const std::int32_t> cpuSlots() const { return cpu_slots_; }
    std::span<const double> ramGb() const { return ram_gb_; }

    // --- derived hot columns ----------------------------------------
    /** end - start per row (JobRecord::runTime). */
    std::span<const double> runtimeS() const { return runtime_s_; }
    /** start - submit per row (JobRecord::waitTime). */
    std::span<const double> waitS() const { return wait_s_; }
    /** gpus * runtime / 3600 per row (JobRecord::gpuHours). */
    std::span<const double> gpuHours() const { return gpu_hours_; }
    /** JobRecord::meanUtilization(r) per row; 0 for CPU jobs. */
    std::span<const double>
    meanUtil(Resource r) const
    {
        return mean_util_[static_cast<std::size_t>(r)];
    }
    /** JobRecord::maxUtilization(r) per row; 0 for CPU jobs. */
    std::span<const double>
    maxUtil(Resource r) const
    {
        return max_util_[static_cast<std::size_t>(r)];
    }

    // --- interned id tables -----------------------------------------
    /** Distinct user ids in first-appearance order. */
    const IdTable &users() const { return users_; }
    /** Distinct packJobType keys in first-appearance order. */
    const IdTable &jobTypes() const { return job_types_; }

  private:
    std::vector<std::uint32_t> job_id_, user_idx_, type_idx_;
    std::vector<std::uint8_t> interface_, terminal_, true_class_, has_ts_;
    std::vector<double> submit_, start_, end_, walltime_;
    std::vector<std::int32_t> gpus_, cpu_slots_;
    std::vector<double> ram_gb_;
    std::vector<double> runtime_s_, wait_s_, gpu_hours_;
    std::array<std::vector<double>, num_resources> mean_util_, max_util_;
    IdTable users_;
    IdTable job_types_;
};

} // namespace aiwc::core
