/**
 * @file
 * Figs. 6-7a analysis over the detailed time-series subset: active-time
 * fractions, the CoV of idle/active interval lengths, and the CoV of
 * resource utilization during active phases.
 */

#pragma once

#include "aiwc/core/dataset.hh"
#include "aiwc/stats/ecdf.hh"

namespace aiwc::core
{

/** The distributions of Figs. 6 and 7a (percent units). */
struct PhaseReport
{
    /** Jobs in the subset that contributed. */
    std::size_t jobs = 0;

    /** Fig. 6a: % of run time in active phases, one point per job. */
    stats::EmpiricalCdf active_fraction_pct;
    /** Fig. 6b: per-job CoV (%) of idle interval lengths. */
    stats::EmpiricalCdf idle_interval_cov_pct;
    /** Fig. 6b: per-job CoV (%) of active interval lengths. */
    stats::EmpiricalCdf active_interval_cov_pct;

    /** Fig. 7a: per-job CoV (%) of utilization during active phases. */
    stats::EmpiricalCdf active_sm_cov_pct;
    stats::EmpiricalCdf active_membw_cov_pct;
    stats::EmpiricalCdf active_memsize_cov_pct;
};

/**
 * Computes the phase report. Only jobs with detailed time series
 * contribute (the paper collected 100 ms telemetry for ~2149 jobs);
 * interval-CoV entries require at least `min_intervals` intervals so
 * a CoV is meaningful.
 */
class PhaseAnalyzer
{
  public:
    explicit PhaseAnalyzer(std::size_t min_intervals = 3)
        : min_intervals_(min_intervals) {}

    PhaseReport analyze(const Dataset &dataset) const;

  private:
    std::size_t min_intervals_;
};

} // namespace aiwc::core

