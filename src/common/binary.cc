#include "aiwc/common/binary.hh"

#include <array>

namespace aiwc
{

namespace
{

constexpr std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> crc_table = makeCrcTable();

} // namespace

std::uint32_t
crc32(std::span<const std::uint8_t> bytes)
{
    std::uint32_t crc = 0xffffffffu;
    for (std::uint8_t b : bytes)
        crc = crc_table[(crc ^ b) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace aiwc
