#include "aiwc/common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace aiwc
{

namespace
{
LogLevel global_level = LogLevel::Info;
}

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

namespace detail
{

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[aiwc:%s] %s\n", tag, msg.c_str());
}

void
die(const char *tag, const std::string &msg, bool abrt)
{
    std::fprintf(stderr, "[aiwc:%s] %s\n", tag, msg.c_str());
    if (abrt)
        std::abort();
    std::exit(1);
}

} // namespace detail
} // namespace aiwc
