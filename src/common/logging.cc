#include "aiwc/common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace aiwc
{

namespace
{
LogLevel global_level = LogLevel::Info;
}

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

namespace detail
{

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[aiwc:%s] %s\n", tag, msg.c_str());
}

void
die(const char *tag, const std::string &msg, bool abrt)
{
    std::fprintf(stderr, "[aiwc:%s] %s\n", tag, msg.c_str());
    // LOG_FATAL's terminators: the message is already emitted and there is
    // no contract to raise, so ending the process here is the whole point.
    if (abrt)
        // aiwc-lint: allow(contract-abort) -- deliberate LOG_FATAL abort
        std::abort();
    // aiwc-lint: allow(contract-abort) -- deliberate LOG_FATAL exit
    std::exit(1);
}

} // namespace detail
} // namespace aiwc
