#include "aiwc/common/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "aiwc/base/logging.hh"

namespace aiwc
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    AIWC_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    AIWC_ASSERT(cells.size() == headers_.size(),
                "row width ", cells.size(), " != header width ",
                headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
formatNumber(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    std::string s(buf);
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0')
            s.pop_back();
        if (!s.empty() && s.back() == '.')
            s.pop_back();
    }
    return s.empty() ? "0" : s;
}

std::string
formatPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
formatDuration(double seconds)
{
    char buf[64];
    if (seconds < 60.0)
        std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
    else if (seconds < 3600.0)
        std::snprintf(buf, sizeof(buf), "%.1fmin", seconds / 60.0);
    else if (seconds < 86400.0)
        std::snprintf(buf, sizeof(buf), "%.1fh", seconds / 3600.0);
    else
        std::snprintf(buf, sizeof(buf), "%.1fd", seconds / 86400.0);
    return buf;
}

} // namespace aiwc
