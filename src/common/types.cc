#include "aiwc/common/types.hh"

namespace aiwc
{

const char *
toString(Interface i)
{
    switch (i) {
      case Interface::MapReduce: return "map-reduce";
      case Interface::Batch: return "batch";
      case Interface::Interactive: return "interactive";
      case Interface::Other: return "other";
    }
    return "?";
}

const char *
toString(Lifecycle c)
{
    switch (c) {
      case Lifecycle::Mature: return "mature";
      case Lifecycle::Exploratory: return "exploratory";
      case Lifecycle::Development: return "development";
      case Lifecycle::Ide: return "IDE";
    }
    return "?";
}

const char *
toString(TerminalState s)
{
    switch (s) {
      case TerminalState::Completed: return "completed";
      case TerminalState::Cancelled: return "cancelled";
      case TerminalState::Failed: return "failed";
      case TerminalState::TimedOut: return "timed-out";
      case TerminalState::NodeFailure: return "node-failure";
    }
    return "?";
}

const char *
toString(Resource r)
{
    switch (r) {
      case Resource::Sm: return "SM";
      case Resource::MemoryBw: return "memory-bw";
      case Resource::MemorySize: return "memory-size";
      case Resource::PcieTx: return "PCIe-Tx";
      case Resource::PcieRx: return "PCIe-Rx";
      case Resource::Power: return "power";
    }
    return "?";
}

const char *
toString(SlaClass c)
{
    switch (c) {
      case SlaClass::LatencySensitive: return "latency-sensitive";
      case SlaClass::Batch: return "batch";
      case SlaClass::Scavenger: return "scavenger";
    }
    return "?";
}

const char *
toString(TaskType t)
{
    switch (t) {
      case TaskType::Web: return "WEB";
      case TaskType::Ai: return "AI";
      case TaskType::Crypto: return "CRYPTO";
      case TaskType::Stream: return "STREAM";
      case TaskType::Hpc: return "HPC";
    }
    return "?";
}

} // namespace aiwc
