#include "aiwc/common/csv.hh"

#include "aiwc/base/logging.hh"

namespace aiwc
{

CsvWriter::CsvWriter(std::ostream &os, const std::vector<std::string> &header)
    : os_(os), columns_(header.size())
{
    AIWC_ASSERT(columns_ > 0, "CSV needs at least one column");
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(header[i]);
    }
    os_ << '\n';
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    AIWC_ASSERT(cells.size() == columns_, "CSV row width mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(cells[i]);
    }
    os_ << '\n';
    ++rows_;
}

std::vector<std::string>
parseCsvLine(const std::string &line)
{
    // A line read with getline() from a CRLF file keeps its '\r'; that
    // is a line terminator, not data, so strip exactly one trailing
    // '\r'. Carriage returns elsewhere (e.g. inside quoted cells) are
    // cell content and round-trip unchanged.
    std::size_t len = line.size();
    if (len > 0 && line[len - 1] == '\r')
        --len;

    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < len; ++i) {
        const char ch = line[i];
        if (quoted) {
            if (ch == '"') {
                if (i + 1 < len && line[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cell += ch;
            }
        } else if (ch == '"') {
            quoted = true;
        } else if (ch == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else {
            cell += ch;
        }
    }
    cells.push_back(std::move(cell));
    return cells;
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace aiwc
