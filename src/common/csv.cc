#include "aiwc/common/csv.hh"

#include "aiwc/common/logging.hh"

namespace aiwc
{

CsvWriter::CsvWriter(std::ostream &os, const std::vector<std::string> &header)
    : os_(os), columns_(header.size())
{
    AIWC_ASSERT(columns_ > 0, "CSV needs at least one column");
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(header[i]);
    }
    os_ << '\n';
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    AIWC_ASSERT(cells.size() == columns_, "CSV row width mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(cells[i]);
    }
    os_ << '\n';
    ++rows_;
}

std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (quoted) {
            if (ch == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cell += ch;
            }
        } else if (ch == '"') {
            quoted = true;
        } else if (ch == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else if (ch != '\r') {
            cell += ch;
        }
    }
    cells.push_back(std::move(cell));
    return cells;
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace aiwc
