#include "aiwc/common/parallel.hh"

#include "aiwc/base/check.hh"

#include <cstdlib>
#include <memory>

namespace aiwc
{

namespace
{

/** Set for the lifetime of every worker thread's loop. */
// aiwc-lint: allow(mutable-global) -- worker-identity flag, written once at spawn, read only to reject nested parallelism; never reaches results
thread_local bool worker_thread = false;

// aiwc-lint: allow(mutable-global) -- guards the lazy global pool below
Mutex global_pool_mutex;
// aiwc-lint: allow(mutable-global) -- the sanctioned pool singleton; geometry fixed by config, mutex-guarded, shard merges stay index-ordered
std::unique_ptr<ThreadPool> global_pool AIWC_GUARDED_BY(global_pool_mutex);

} // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads)
{
    AIWC_CHECK(threads >= 1, "thread pool needs >= 1 worker, got ",
               threads);
    obs::MetricsRegistry::global()
        .gauge("aiwc.parallel.pool_threads")
        .set(threads);
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    AIWC_DCHECK(task != nullptr, "null task submitted to thread pool");
    {
        MutexLock lock(mutex_);
        AIWC_CHECK(!stop_, "submit() on a stopping thread pool");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    worker_thread = true;
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            // Explicit predicate loop (not a wait-with-predicate
            // lambda): the thread-safety analysis checks the guarded
            // reads, and spurious wakeups re-test the same condition.
            while (!stop_ && queue_.empty())
                cv_.wait(mutex_);
            if (queue_.empty())
                return;  // stop_ set and the queue is drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // Occupancy is sampled at task start: the distribution of "how
        // many workers were busy when work landed" is the pool's
        // utilization figure (all-buckets-at-threads == saturated).
        static obs::Histogram &occupancy =
            obs::MetricsRegistry::global().histogram(
                "aiwc.parallel.pool_occupancy");
        static obs::Counter &tasks =
            obs::MetricsRegistry::global().counter(
                "aiwc.parallel.tasks_executed");
        const int busy = active_.fetch_add(1, std::memory_order_relaxed);
        occupancy.observe(static_cast<std::uint64_t>(busy) + 1);
        tasks.add(1);
        task();
        active_.fetch_sub(1, std::memory_order_relaxed);
    }
}

bool
ThreadPool::onWorkerThread()
{
    return worker_thread;
}

int
defaultThreadCount()
{
    if (const char *env = std::getenv("AIWC_THREADS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
        warn("ignoring AIWC_THREADS='", env, "': not a positive count");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool &
globalPool()
{
    MutexLock lock(global_pool_mutex);
    if (!global_pool)
        global_pool = std::make_unique<ThreadPool>(defaultThreadCount());
    return *global_pool;
}

void
setGlobalThreadCount(int threads)
{
    AIWC_CHECK(threads >= 1, "global thread count must be >= 1, got ",
               threads);
    MutexLock lock(global_pool_mutex);
    if (global_pool && global_pool->threads() == threads)
        return;
    global_pool.reset();  // join the old workers before rebuilding
    global_pool = std::make_unique<ThreadPool>(threads);
}

int
globalThreadCount()
{
    return globalPool().threads();
}

namespace detail
{

obs::Histogram &
shardNsHistogram()
{
    static obs::Histogram &hist =
        obs::MetricsRegistry::global().histogram("aiwc.parallel.shard_ns");
    return hist;
}

obs::Counter &
shardsExecutedCounter()
{
    static obs::Counter &counter =
        obs::MetricsRegistry::global().counter("aiwc.parallel.shards_executed");
    return counter;
}

std::vector<ShardRange>
shardRanges(std::size_t n, std::size_t max_shards)
{
    AIWC_CHECK(max_shards >= 1, "shardRanges needs >= 1 shard");
    std::vector<ShardRange> shards;
    if (n == 0)
        return shards;
    const std::size_t count = n < max_shards ? n : max_shards;
    const std::size_t base = n / count;
    const std::size_t extra = n % count;
    shards.reserve(count);
    std::size_t begin = 0;
    for (std::size_t s = 0; s < count; ++s) {
        const std::size_t size = base + (s < extra ? 1 : 0);
        shards.push_back({begin, begin + size, s});
        begin += size;
    }
    AIWC_DCHECK_EQ(begin, n, "shard ranges must partition [0, n)");
    return shards;
}

} // namespace detail

} // namespace aiwc
