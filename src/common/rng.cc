#include "aiwc/common/rng.hh"

#include <cmath>

#include "aiwc/base/logging.hh"

namespace aiwc
{

namespace
{

/** splitmix64 step, used for seeding and stream splitting. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
}

std::uint64_t
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    AIWC_ASSERT(lo <= hi, "uniform bounds inverted");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    AIWC_ASSERT(n > 0, "below(0) is undefined");
    // Lemire-style rejection-free-enough multiply-shift; bias is
    // negligible (n << 2^64) for all library uses.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::gaussian()
{
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::exponential(double rate)
{
    AIWC_ASSERT(rate > 0.0, "exponential rate must be positive");
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

Rng
Rng::split()
{
    // Mix two fresh draws into a new seed; streams from repeated
    // split() calls are pairwise independent for practical purposes.
    std::uint64_t seed = (*this)();
    seed ^= rotl((*this)(), 23) + 0x632be59bd9b4e019ull;
    return Rng(seed);
}

} // namespace aiwc
