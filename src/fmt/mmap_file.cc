#include "aiwc/fmt/mmap_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define AIWC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define AIWC_HAVE_MMAP 0
#endif

namespace aiwc::fmt
{

MmapFile::~MmapFile()
{
    reset();
}

MmapFile::MmapFile(MmapFile &&other) noexcept
{
    *this = std::move(other);
}

MmapFile &
MmapFile::operator=(MmapFile &&other) noexcept
{
    if (this == &other)
        return *this;
    reset();
    bytes_ = other.bytes_;
    map_addr_ = other.map_addr_;
    map_len_ = other.map_len_;
    owned_ = std::move(other.owned_);
    valid_ = other.valid_;
    error_ = std::move(other.error_);
    other.map_addr_ = nullptr;
    other.map_len_ = 0;
    other.bytes_ = {};
    other.valid_ = false;
    // The owned buffer may have moved; re-point the span when the
    // fallback path was in use.
    if (map_addr_ == nullptr && !owned_.empty())
        bytes_ = owned_;
    return *this;
}

void
MmapFile::reset() noexcept
{
#if AIWC_HAVE_MMAP
    if (map_addr_ != nullptr)
        ::munmap(map_addr_, map_len_);
#endif
    map_addr_ = nullptr;
    map_len_ = 0;
    owned_.clear();
    bytes_ = {};
    valid_ = false;
}

namespace
{

/** Whole-file read fallback (and the non-POSIX path). */
bool
readAll(const std::string &path, std::vector<std::uint8_t> &out,
        std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        error = path + ": " + std::strerror(errno);
        return false;
    }
    std::uint8_t buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.insert(out.end(), buf, buf + n);
    const bool ok = std::ferror(f) == 0;
    if (!ok)
        error = path + ": read error";
    std::fclose(f);
    return ok;
}

} // namespace

MmapFile
MmapFile::open(const std::string &path)
{
    MmapFile file;
#if AIWC_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        file.error_ = path + ": " + std::strerror(errno);
        return file;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        file.error_ = path + ": not a regular file";
        ::close(fd);
        return file;
    }
    const auto len = static_cast<std::size_t>(st.st_size);
    if (len == 0) {
        ::close(fd);
        file.valid_ = true;  // empty file, empty span
        return file;
    }
    void *addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (addr != MAP_FAILED) {
        file.map_addr_ = addr;
        file.map_len_ = len;
        file.bytes_ = {static_cast<const std::uint8_t *>(addr), len};
        file.valid_ = true;
        return file;
    }
#endif
    if (!readAll(path, file.owned_, file.error_))
        return file;
    file.bytes_ = file.owned_;
    file.valid_ = true;
    return file;
}

} // namespace aiwc::fmt
