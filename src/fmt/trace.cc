#include "aiwc/fmt/trace.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

#include "aiwc/base/check.hh"
#include "aiwc/common/binary.hh"
#include "aiwc/fmt/mmap_file.hh"
#include "aiwc/obs/metrics.hh"

namespace aiwc::fmt
{

namespace
{

obs::Counter &
tracesEncodedCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.fmt.traces_encoded");
    return c;
}

obs::Counter &
tracesDecodedCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.fmt.traces_decoded");
    return c;
}

obs::Counter &
decodeRejectsCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.fmt.decode_rejects");
    return c;
}

constexpr std::size_t header_bytes = 24;
constexpr std::size_t dir_entry_bytes = 24;
constexpr std::size_t section_count = 18;
constexpr std::size_t max_sections = 64;

/** One RunningSummary raw state: count u64 + four f64 accumulators. */
constexpr std::size_t raw_state_bytes = 8 + 4 * 8;
/** Six summaries (Resource order) per flattened GPU. */
constexpr std::size_t gpu_stats_bytes = 6 * raw_state_bytes;

/** Sanity ceiling on GPUs per job (the study tops out at 16). */
constexpr std::uint64_t max_gpus_per_row = 1024;
/** Sanity ceiling on rows, far above any real trace. */
constexpr std::uint64_t max_rows = 1ull << 48;

enum SectionId : std::uint32_t
{
    sec_job_id = 1,
    sec_user_table = 2,
    sec_user_index = 3,
    sec_interface = 4,
    sec_terminal = 5,
    sec_true_class = 6,
    sec_has_ts = 7,
    sec_submit = 8,
    sec_start = 9,
    sec_end = 10,
    sec_walltime = 11,
    sec_gpus = 12,
    sec_cpu_slots = 13,
    sec_ram_gb = 14,
    sec_gpu_offsets = 15,
    sec_gpu_stats = 16,
    sec_phases = 17,
    sec_type_table = 18,
};

void
writeRawState(ByteWriter &w, const stats::RunningSummary &s)
{
    const stats::RunningSummary::RawState state = s.rawState();
    w.u64(state.count);
    w.f64(state.min);
    w.f64(state.max);
    w.f64(state.sum);
    w.f64(state.sum_sq);
}

/**
 * Read one raw accumulator state, validating everything fromRawState
 * AIWC_CHECKs — disk bytes must never reach a contract abort.
 * @return false on any violation.
 */
bool
readRawState(ByteReader &r, stats::RunningSummary &out)
{
    stats::RunningSummary::RawState state;
    state.count = static_cast<std::size_t>(r.u64());
    state.min = r.f64();
    state.max = r.f64();
    state.sum = r.f64();
    state.sum_sq = r.f64();
    if (!r.ok())
        return false;
    if (state.count == 0) {
        // An empty summary stores all-zero accumulators (NaN fails
        // these comparisons, which is the point).
        if (!(state.min == 0.0 && state.max == 0.0 &&
              state.sum == 0.0 && state.sum_sq == 0.0))
            return false;
    } else if (!std::isfinite(state.min) || !std::isfinite(state.max) ||
               !std::isfinite(state.sum) ||
               !std::isfinite(state.sum_sq) || state.min > state.max) {
        return false;
    }
    out = stats::RunningSummary::fromRawState(state);
    return true;
}

// --- encoding --------------------------------------------------------------

struct Section
{
    std::uint32_t id = 0;
    std::vector<std::uint8_t> bytes;
};

std::vector<Section>
buildSections(const core::Dataset &dataset)
{
    const auto &records = dataset.records();
    const core::ColumnTable &cols = dataset.columns();

    std::vector<Section> sections;
    sections.reserve(section_count);
    auto add = [&](std::uint32_t id) -> ByteWriter {
        sections.push_back({id, {}});
        return ByteWriter(sections.back().bytes);
    };

    {
        ByteWriter w = add(sec_job_id);
        for (const core::JobRecord &r : records)
            w.u32(r.id);
    }
    {
        ByteWriter w = add(sec_user_table);
        for (const std::uint32_t raw : cols.users().rawIds())
            w.u32(raw);
    }
    {
        ByteWriter w = add(sec_user_index);
        for (const std::uint32_t v : cols.userIndex())
            w.u32(v);
    }
    {
        ByteWriter w = add(sec_interface);
        for (const core::JobRecord &r : records)
            w.u8(static_cast<std::uint8_t>(r.interface));
    }
    {
        ByteWriter w = add(sec_terminal);
        for (const core::JobRecord &r : records)
            w.u8(static_cast<std::uint8_t>(r.terminal));
    }
    {
        ByteWriter w = add(sec_true_class);
        for (const core::JobRecord &r : records)
            w.u8(static_cast<std::uint8_t>(r.true_class));
    }
    {
        ByteWriter w = add(sec_has_ts);
        for (const core::JobRecord &r : records)
            w.u8(r.has_timeseries ? 1 : 0);
    }
    {
        ByteWriter w = add(sec_submit);
        for (const core::JobRecord &r : records)
            w.f64(r.submit_time);
    }
    {
        ByteWriter w = add(sec_start);
        for (const core::JobRecord &r : records)
            w.f64(r.start_time);
    }
    {
        ByteWriter w = add(sec_end);
        for (const core::JobRecord &r : records)
            w.f64(r.end_time);
    }
    {
        ByteWriter w = add(sec_walltime);
        for (const core::JobRecord &r : records)
            w.f64(r.walltime_limit);
    }
    {
        ByteWriter w = add(sec_gpus);
        for (const core::JobRecord &r : records)
            w.u32(static_cast<std::uint32_t>(r.gpus));
    }
    {
        ByteWriter w = add(sec_cpu_slots);
        for (const core::JobRecord &r : records)
            w.u32(static_cast<std::uint32_t>(r.cpu_slots));
    }
    {
        ByteWriter w = add(sec_ram_gb);
        for (const core::JobRecord &r : records)
            w.f64(r.ram_gb);
    }
    {
        ByteWriter w = add(sec_gpu_offsets);
        std::uint64_t off = 0;
        w.u64(off);
        for (const core::JobRecord &r : records) {
            off += r.per_gpu.size();
            w.u64(off);
        }
    }
    {
        ByteWriter w = add(sec_gpu_stats);
        for (const core::JobRecord &r : records) {
            for (const core::GpuUsageSummary &gpu : r.per_gpu) {
                writeRawState(w, gpu.sm);
                writeRawState(w, gpu.membw);
                writeRawState(w, gpu.memsize);
                writeRawState(w, gpu.pcie_tx);
                writeRawState(w, gpu.pcie_rx);
                writeRawState(w, gpu.power_watts);
            }
        }
    }
    {
        ByteWriter w = add(sec_phases);
        for (const core::JobRecord &r : records) {
            if (!r.has_timeseries)
                continue;
            w.f64(r.phases.active_fraction);
            w.f64(r.phases.active_sm_cov);
            w.f64(r.phases.active_membw_cov);
            w.f64(r.phases.active_memsize_cov);
            w.u32(static_cast<std::uint32_t>(
                r.phases.active_intervals.size()));
            for (double v : r.phases.active_intervals)
                w.f64(v);
            w.u32(static_cast<std::uint32_t>(
                r.phases.idle_intervals.size()));
            for (double v : r.phases.idle_intervals)
                w.f64(v);
        }
    }
    {
        ByteWriter w = add(sec_type_table);
        for (const std::uint32_t raw : cols.jobTypes().rawIds())
            w.u32(raw);
    }
    return sections;
}

constexpr std::uint64_t
align8(std::uint64_t v)
{
    return (v + 7) & ~std::uint64_t{7};
}

// --- decoding --------------------------------------------------------------

TraceLoadResult
reject(TraceStatus status, std::string error)
{
    decodeRejectsCounter().add(1);
    TraceLoadResult result;
    result.status = status;
    result.error = std::move(error);
    return result;
}

/** Directory entry plus its resolved payload span. */
struct SectionView
{
    bool present = false;
    std::span<const std::uint8_t> bytes;
};

} // namespace

const char *
toString(TraceStatus status)
{
    switch (status) {
      case TraceStatus::Ok: return "ok";
      case TraceStatus::IoError: return "io-error";
      case TraceStatus::Truncated: return "truncated";
      case TraceStatus::BadMagic: return "bad-magic";
      case TraceStatus::VersionSkew: return "version-skew";
      case TraceStatus::BadDirectory: return "bad-directory";
      case TraceStatus::BadCrc: return "bad-crc";
      case TraceStatus::Malformed: return "malformed";
    }
    return "unknown";
}

std::vector<std::uint8_t>
encodeTrace(const core::Dataset &dataset)
{
    const std::vector<Section> sections = buildSections(dataset);
    AIWC_CHECK(sections.size() == section_count,
               "trace section list out of sync");

    // Lay the sections out after the directory, each 8-byte aligned.
    const std::uint64_t dir_end =
        header_bytes + dir_entry_bytes * sections.size();
    std::uint64_t cursor = align8(dir_end);
    std::vector<std::uint64_t> offsets;
    offsets.reserve(sections.size());
    for (const Section &s : sections) {
        offsets.push_back(cursor);
        cursor = align8(cursor + s.bytes.size());
    }

    std::vector<std::uint8_t> out;
    out.reserve(cursor);
    std::vector<std::uint8_t> directory;
    directory.reserve(dir_entry_bytes * sections.size());
    {
        ByteWriter w(directory);
        for (std::size_t i = 0; i < sections.size(); ++i) {
            w.u32(sections[i].id);
            w.u32(crc32(sections[i].bytes));
            w.u64(offsets[i]);
            w.u64(sections[i].bytes.size());
        }
    }
    {
        ByteWriter w(out);
        w.u32(trace_magic);
        w.u16(trace_version);
        w.u16(0);  // flags, reserved
        w.u64(dataset.size());
        w.u32(static_cast<std::uint32_t>(sections.size()));
        w.u32(crc32(directory));
    }
    out.insert(out.end(), directory.begin(), directory.end());
    for (std::size_t i = 0; i < sections.size(); ++i) {
        out.resize(offsets[i], 0);  // alignment padding
        out.insert(out.end(), sections[i].bytes.begin(),
                   sections[i].bytes.end());
    }
    tracesEncodedCounter().add(1);
    return out;
}

TraceLoadResult
decodeTrace(std::span<const std::uint8_t> bytes)
{
    if (bytes.size() < header_bytes)
        return reject(TraceStatus::Truncated,
                      "shorter than the trace header");
    ByteReader header(bytes.first(header_bytes));
    const std::uint32_t magic = header.u32();
    const std::uint16_t version = header.u16();
    const std::uint16_t flags = header.u16();
    const std::uint64_t rows64 = header.u64();
    const std::uint32_t n_sections = header.u32();
    const std::uint32_t dir_crc = header.u32();

    if (magic != trace_magic)
        return reject(TraceStatus::BadMagic, "not a trace file");
    if (version != trace_version)
        return reject(TraceStatus::VersionSkew,
                      "unsupported trace version " +
                          std::to_string(version));
    if (flags != 0)
        return reject(TraceStatus::Malformed, "reserved flags set");
    if (n_sections < section_count || n_sections > max_sections)
        return reject(TraceStatus::Malformed, "bogus section count");
    if (rows64 > max_rows)
        return reject(TraceStatus::Malformed, "bogus row count");
    const auto rows = static_cast<std::size_t>(rows64);

    const std::uint64_t dir_len =
        static_cast<std::uint64_t>(dir_entry_bytes) * n_sections;
    if (bytes.size() < header_bytes + dir_len)
        return reject(TraceStatus::Truncated, "truncated directory");
    const auto directory = bytes.subspan(header_bytes,
                                         static_cast<std::size_t>(dir_len));
    if (crc32(directory) != dir_crc)
        return reject(TraceStatus::BadDirectory, "directory crc mismatch");

    // Resolve the directory: known ids must appear exactly once and
    // lie fully after the directory; unknown ids are skipped.
    std::array<SectionView, section_count + 1> secs{};
    std::array<std::uint32_t, section_count + 1> sec_crcs{};
    ByteReader dir(directory);
    for (std::uint32_t i = 0; i < n_sections; ++i) {
        const std::uint32_t id = dir.u32();
        const std::uint32_t crc = dir.u32();
        const std::uint64_t offset = dir.u64();
        const std::uint64_t length = dir.u64();
        if (offset < header_bytes + dir_len || offset > bytes.size() ||
            length > bytes.size() - offset)
            return reject(TraceStatus::BadDirectory,
                          "section extent outside the file");
        if (id == 0 || id > section_count)
            continue;  // forward compat: ignore unknown sections
        if (secs[id].present)
            return reject(TraceStatus::Malformed,
                          "duplicate section id " + std::to_string(id));
        secs[id].present = true;
        secs[id].bytes = bytes.subspan(static_cast<std::size_t>(offset),
                                       static_cast<std::size_t>(length));
        sec_crcs[id] = crc;
    }
    for (std::uint32_t id = 1; id <= section_count; ++id) {
        if (!secs[id].present)
            return reject(TraceStatus::Malformed,
                          "missing section id " + std::to_string(id));
        if (crc32(secs[id].bytes) != sec_crcs[id])
            return reject(TraceStatus::BadCrc,
                          "section " + std::to_string(id) +
                              " crc mismatch");
    }

    // Column lengths must match the row count exactly.
    auto expect = [&](SectionId id, std::uint64_t want) {
        return secs[id].bytes.size() == want;
    };
    const std::uint64_t n = rows;
    if (!expect(sec_job_id, n * 4) || !expect(sec_user_index, n * 4) ||
        !expect(sec_interface, n) || !expect(sec_terminal, n) ||
        !expect(sec_true_class, n) || !expect(sec_has_ts, n) ||
        !expect(sec_submit, n * 8) || !expect(sec_start, n * 8) ||
        !expect(sec_end, n * 8) || !expect(sec_walltime, n * 8) ||
        !expect(sec_gpus, n * 4) || !expect(sec_cpu_slots, n * 4) ||
        !expect(sec_ram_gb, n * 8) ||
        !expect(sec_gpu_offsets, (n + 1) * 8))
        return reject(TraceStatus::Malformed, "column length mismatch");
    if (secs[sec_user_table].bytes.size() % 4 != 0 ||
        secs[sec_type_table].bytes.size() % 4 != 0 ||
        secs[sec_gpu_stats].bytes.size() % gpu_stats_bytes != 0)
        return reject(TraceStatus::Malformed, "ragged table section");

    const std::size_t n_users = secs[sec_user_table].bytes.size() / 4;
    const std::size_t n_types = secs[sec_type_table].bytes.size() / 4;
    const std::uint64_t n_gpu_stats =
        secs[sec_gpu_stats].bytes.size() / gpu_stats_bytes;
    if ((rows == 0 && (n_users != 0 || n_types != 0)) || n_users > rows ||
        n_types > rows)
        return reject(TraceStatus::Malformed, "oversized id table");

    std::vector<std::uint32_t> user_table(n_users);
    {
        ByteReader r(secs[sec_user_table].bytes);
        for (std::uint32_t &v : user_table)
            v = r.u32();
    }
    std::vector<std::uint32_t> type_table(n_types);
    {
        ByteReader r(secs[sec_type_table].bytes);
        for (std::uint32_t &v : type_table)
            v = r.u32();
    }

    ByteReader job_id(secs[sec_job_id].bytes);
    ByteReader user_index(secs[sec_user_index].bytes);
    ByteReader iface(secs[sec_interface].bytes);
    ByteReader terminal(secs[sec_terminal].bytes);
    ByteReader true_class(secs[sec_true_class].bytes);
    ByteReader has_ts(secs[sec_has_ts].bytes);
    ByteReader submit(secs[sec_submit].bytes);
    ByteReader start(secs[sec_start].bytes);
    ByteReader end(secs[sec_end].bytes);
    ByteReader walltime(secs[sec_walltime].bytes);
    ByteReader gpus(secs[sec_gpus].bytes);
    ByteReader cpu_slots(secs[sec_cpu_slots].bytes);
    ByteReader ram_gb(secs[sec_ram_gb].bytes);
    ByteReader gpu_offsets(secs[sec_gpu_offsets].bytes);
    ByteReader gpu_stats(secs[sec_gpu_stats].bytes);
    ByteReader phases(secs[sec_phases].bytes);

    std::vector<core::JobRecord> records;
    records.reserve(rows);
    std::uint64_t prev_off = gpu_offsets.u64();
    if (prev_off != 0)
        return reject(TraceStatus::Malformed,
                      "gpu_offsets must start at zero");
    for (std::size_t i = 0; i < rows; ++i) {
        core::JobRecord rec;
        rec.id = job_id.u32();
        const std::uint32_t uidx = user_index.u32();
        const std::uint8_t iface_v = iface.u8();
        const std::uint8_t terminal_v = terminal.u8();
        const std::uint8_t class_v = true_class.u8();
        const std::uint8_t ts_v = has_ts.u8();
        rec.submit_time = submit.f64();
        rec.start_time = start.f64();
        rec.end_time = end.f64();
        rec.walltime_limit = walltime.f64();
        const std::uint32_t gpus_v = gpus.u32();
        rec.cpu_slots = static_cast<int>(cpu_slots.u32());
        rec.ram_gb = ram_gb.f64();
        const std::uint64_t gpu_end = gpu_offsets.u64();

        if (uidx >= n_users)
            return reject(TraceStatus::Malformed,
                          "user index out of table range");
        rec.user = user_table[uidx];
        if (iface_v >= num_interfaces ||
            terminal_v >= num_terminal_states ||
            class_v >= num_lifecycles || ts_v > 1)
            return reject(TraceStatus::Malformed, "enum out of range");
        if (!std::isfinite(rec.submit_time) ||
            !std::isfinite(rec.start_time) ||
            !std::isfinite(rec.end_time) ||
            !std::isfinite(rec.walltime_limit) ||
            !std::isfinite(rec.ram_gb))
            return reject(TraceStatus::Malformed, "non-finite time column");
        if (gpus_v > max_gpus_per_row)
            return reject(TraceStatus::Malformed, "implausible gpu count");
        if (gpu_end < prev_off || gpu_end > n_gpu_stats ||
            gpu_end - prev_off > max_gpus_per_row)
            return reject(TraceStatus::Malformed, "bogus gpu_offsets");
        rec.interface = static_cast<Interface>(iface_v);
        rec.terminal = static_cast<TerminalState>(terminal_v);
        rec.true_class = static_cast<Lifecycle>(class_v);
        rec.has_timeseries = ts_v == 1;
        rec.gpus = static_cast<int>(gpus_v);

        rec.per_gpu.resize(static_cast<std::size_t>(gpu_end - prev_off));
        for (core::GpuUsageSummary &gpu : rec.per_gpu) {
            if (!readRawState(gpu_stats, gpu.sm) ||
                !readRawState(gpu_stats, gpu.membw) ||
                !readRawState(gpu_stats, gpu.memsize) ||
                !readRawState(gpu_stats, gpu.pcie_tx) ||
                !readRawState(gpu_stats, gpu.pcie_rx) ||
                !readRawState(gpu_stats, gpu.power_watts))
                return reject(TraceStatus::Malformed,
                              "invalid gpu summary state");
        }
        prev_off = gpu_end;

        if (rec.has_timeseries) {
            rec.phases.active_fraction = phases.f64();
            // The CoV fields may legitimately be NaN (the covPercent
            // zero-mean convention); only the fraction is range-checked.
            rec.phases.active_sm_cov = phases.f64();
            rec.phases.active_membw_cov = phases.f64();
            rec.phases.active_memsize_cov = phases.f64();
            if (!phases.ok() ||
                !std::isfinite(rec.phases.active_fraction) ||
                rec.phases.active_fraction < 0.0 ||
                rec.phases.active_fraction > 1.0)
                return reject(TraceStatus::Malformed,
                              "invalid phase fraction");
            auto read_intervals = [&](std::vector<double> &out) {
                const std::uint32_t count = phases.u32();
                if (!phases.ok() ||
                    phases.remaining() <
                        static_cast<std::size_t>(count) * 8)
                    return false;
                out.resize(count);
                for (double &v : out) {
                    v = phases.f64();
                    if (!std::isfinite(v) || v < 0.0)
                        return false;
                }
                return phases.ok();
            };
            if (!read_intervals(rec.phases.active_intervals) ||
                !read_intervals(rec.phases.idle_intervals))
                return reject(TraceStatus::Malformed,
                              "invalid phase intervals");
        }
        records.push_back(std::move(rec));
    }

    if (prev_off != n_gpu_stats || !gpu_stats.atEnd())
        return reject(TraceStatus::Malformed,
                      "gpu stats not fully consumed");
    if (!phases.atEnd())
        return reject(TraceStatus::Malformed,
                      "trailing bytes in phases section");

    TraceLoadResult result;
    result.dataset = core::Dataset(std::move(records));

    // The on-disk id tables must be canonical: exactly what interning
    // the rows reproduces. This rejects shuffled or padded tables (and
    // any duplicate raw ids) without ever trusting them.
    const core::ColumnTable &cols = result.dataset.columns();
    const auto users = cols.users().rawIds();
    const auto types = cols.jobTypes().rawIds();
    if (!std::equal(users.begin(), users.end(), user_table.begin(),
                    user_table.end()) ||
        !std::equal(types.begin(), types.end(), type_table.begin(),
                    type_table.end()))
        return reject(TraceStatus::Malformed, "non-canonical id table");

    result.status = TraceStatus::Ok;
    tracesDecodedCounter().add(1);
    return result;
}

bool
writeTraceFile(const std::string &path, const core::Dataset &dataset,
               std::string *error)
{
    const std::vector<std::uint8_t> bytes = encodeTrace(dataset);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        if (error != nullptr)
            *error = path + ": cannot open for writing";
        return false;
    }
    const std::size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool ok = written == bytes.size() && std::fclose(f) == 0;
    if (!ok && error != nullptr)
        *error = path + ": short write";
    return ok;
}

TraceLoadResult
loadTraceFile(const std::string &path)
{
    const MmapFile file = MmapFile::open(path);
    if (!file.valid()) {
        TraceLoadResult result;
        result.status = TraceStatus::IoError;
        result.error = file.error();
        return result;
    }
    return decodeTrace(file.bytes());
}

std::uint64_t
contentDigest(const core::Dataset &dataset)
{
    // FNV-1a over the canonical encoding: any bit of any field moves
    // the digest.
    const std::vector<std::uint8_t> bytes = encodeTrace(dataset);
    std::uint64_t h = 14695981039346656037ull;
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace aiwc::fmt
