#include "aiwc/sched/placement.hh"

#include <algorithm>

#include "aiwc/base/check.hh"

namespace aiwc::sched
{

namespace
{

/**
 * CPU slots and RAM a GPU job needs on a node hosting `gpus_here` of
 * its `total_gpus` GPUs: a proportional share, rounded up.
 */
int
cpuShare(int total_slots, int gpus_here, int total_gpus)
{
    return (total_slots * gpus_here + total_gpus - 1) / total_gpus;
}

double
ramShare(double total_ram, int gpus_here, int total_gpus)
{
    return total_ram * static_cast<double>(gpus_here) /
           static_cast<double>(total_gpus);
}

} // namespace

std::optional<Allocation>
DensePlacement::place(const sim::Cluster &cluster,
                      const JobRequest &request) const
{
    if (request.isGpuJob())
        return placeGpuJob(cluster, request);
    return placeCpuJob(cluster, request);
}

std::optional<Allocation>
DensePlacement::placeGpuJob(const sim::Cluster &cluster,
                            const JobRequest &request) const
{
    const auto &nodes = cluster.nodes();
    const int want = request.gpus;

    // Pass 1: a single node that can host everything — by far the
    // common case (97.6% of jobs use <= 2 GPUs, which fit one
    // Supercloud node). Among candidates, prefer a node that already
    // hosts work (busiest-fit): GPU jobs pack together, preserving
    // fully-idle nodes for the whole-node CPU requests — the
    // co-location strategy Sec. III credits for the low GPU waits.
    const sim::Node *best = nullptr;
    for (const auto &node : nodes) {
        if (node.freeGpus() >= want &&
            node.fitsCpu(request.cpu_slots, request.ram_gb)) {
            if (!best || (node.freeCpuSlots() < best->freeCpuSlots())) {
                best = &node;
            }
        }
    }
    if (best) {
        Allocation plan;
        NodeShare share;
        share.node = best->id();
        share.cpu_slots = request.cpu_slots;
        share.ram_gb = request.ram_gb;
        share.gpus.resize(static_cast<std::size_t>(want));
        plan.shares.push_back(std::move(share));
        return plan;
    }

    // Pass 2: spread across the smallest window of neighbouring nodes
    // ("placed as densely as possible ... or on neighbouring nodes on
    // the network interconnect", Sec. V). We scan contiguous node-id
    // windows and take the first window satisfying the demand.
    for (std::size_t first = 0; first < nodes.size(); ++first) {
        int gathered = 0;
        std::size_t last = first;
        for (; last < nodes.size(); ++last) {
            const auto &node = nodes[last];
            const int here = node.freeGpus();
            if (here == 0 && last == first)
                break;  // window must start on a useful node
            gathered += here;
            if (gathered >= want)
                break;
        }
        if (gathered < want || last >= nodes.size())
            continue;

        // Build shares over [first, last], taking GPUs greedily.
        Allocation plan;
        int remaining = want;
        bool feasible = true;
        for (std::size_t n = first; n <= last && remaining > 0; ++n) {
            const auto &node = nodes[n];
            const int take = std::min(node.freeGpus(), remaining);
            if (take == 0)
                continue;
            const int slots = cpuShare(request.cpu_slots, take, want);
            const double ram = ramShare(request.ram_gb, take, want);
            if (!node.fitsCpu(slots, ram)) {
                feasible = false;
                break;
            }
            NodeShare share;
            share.node = node.id();
            share.cpu_slots = slots;
            share.ram_gb = ram;
            share.gpus.resize(static_cast<std::size_t>(take));
            plan.shares.push_back(std::move(share));
            remaining -= take;
        }
        if (feasible && remaining == 0)
            return plan;
    }
    return std::nullopt;
}

std::optional<Allocation>
DensePlacement::placeCpuJob(const sim::Cluster &cluster,
                            const JobRequest &request) const
{
    // CPU jobs "usually request all cores and full memory of the
    // nodes" (Sec. III): grant whole idle nodes, enough to cover the
    // slot demand.
    const auto &nodes = cluster.nodes();
    const int slots_per_node = cluster.spec().node.cpuSlots();
    const int nodes_needed =
        (request.cpu_slots + slots_per_node - 1) / slots_per_node;
    const double ram_per_node =
        std::min(request.ram_gb / nodes_needed, cluster.spec().node.ram_gb);

    Allocation plan;
    for (const auto &node : nodes) {
        if (static_cast<int>(plan.shares.size()) == nodes_needed)
            break;
        // Whole node: every slot and (almost) all RAM must be free.
        if (node.freeCpuSlots() == slots_per_node &&
            node.fitsCpu(slots_per_node, ram_per_node)) {
            NodeShare share;
            share.node = node.id();
            share.cpu_slots = slots_per_node;
            share.ram_gb = ram_per_node;
            plan.shares.push_back(std::move(share));
        }
    }
    if (static_cast<int>(plan.shares.size()) < nodes_needed)
        return std::nullopt;
    return plan;
}

void
DensePlacement::commit(sim::Cluster &cluster, JobId job,
                       Allocation &plan) const
{
    AIWC_CHECK(!plan.empty(), "committing an empty plan for job ", job);
    AIWC_CHECK_NE(job, invalid_id, "committing a plan for an invalid job");
    for (auto &share : plan.shares) {
        auto &node = cluster.node(share.node);
        node.allocateCpu(share.cpu_slots, share.ram_gb);
        const auto want = static_cast<int>(share.gpus.size());
        if (want > 0)
            share.gpus = node.allocateGpus(job, want);
        AIWC_CHECK_EQ(static_cast<int>(share.gpus.size()), want,
                      "placement plan went stale before commit");
    }
}

void
DensePlacement::release(sim::Cluster &cluster, const Allocation &plan) const
{
    AIWC_CHECK(!plan.empty(), "releasing an empty allocation");
    for (const auto &share : plan.shares) {
        auto &node = cluster.node(share.node);
        for (GpuId gpu : share.gpus)
            node.releaseGpu(gpu);
        node.releaseCpu(share.cpu_slots, share.ram_gb);
    }
}

} // namespace aiwc::sched
