#include "aiwc/sched/slurm_scheduler.hh"

#include <algorithm>
#include <cmath>

#include "aiwc/base/check.hh"
#include "aiwc/base/logging.hh"
#include "aiwc/obs/trace.hh"

namespace aiwc::sched
{

namespace
{

/** Cached registry handles for the scheduling hot path. */
struct SchedMetrics
{
    obs::Counter &fast_passes;
    obs::Counter &backfill_passes;
    obs::Counter &backfill_attempts;
    obs::Counter &backfill_hits;
    obs::Counter &placement_failures;
    obs::Counter &jobs_started;
    obs::Counter &jobs_finished;
    obs::Histogram &pass_ns;
    obs::Histogram &queue_wait_s;

    static SchedMetrics &
    get()
    {
        auto &r = obs::MetricsRegistry::global();
        static SchedMetrics metrics{
            r.counter("aiwc.sched.fast_passes"),
            r.counter("aiwc.sched.backfill_passes"),
            r.counter("aiwc.sched.backfill_attempts"),
            r.counter("aiwc.sched.backfill_hits"),
            r.counter("aiwc.sched.placement_failures"),
            r.counter("aiwc.sched.jobs_started"),
            r.counter("aiwc.sched.jobs_finished"),
            r.histogram("aiwc.sched.pass_ns"),
            r.histogram("aiwc.sched.queue_wait_s"),
        };
        return metrics;
    }
};

} // namespace

SlurmScheduler::SlurmScheduler(sim::Simulation &sim, sim::Cluster &cluster,
                               SchedulerOptions options)
    : sim_(sim), cluster_(cluster), options_(options)
{
}

Job &
SlurmScheduler::mutableJob(JobId id)
{
    const auto it = index_.find(id);
    AIWC_CHECK(it != index_.end(), "unknown job id ", id);
    return jobs_[it->second];
}

const Job &
SlurmScheduler::job(JobId id) const
{
    const auto it = index_.find(id);
    AIWC_CHECK(it != index_.end(), "unknown job id ", id);
    return jobs_[it->second];
}

void
SlurmScheduler::submit(const JobRequest &request)
{
    AIWC_CHECK(request.id != invalid_id, "job needs an id");
    AIWC_CHECK(index_.find(request.id) == index_.end(),
                "duplicate job id ", request.id);
    AIWC_CHECK(request.submit_time >= sim_.now(),
                "job ", request.id, " submitted in the past");
    AIWC_CHECK(request.gpus >= 0 && request.cpu_slots > 0,
                "job ", request.id, " has an empty resource request");

    // Reject requests no machine state can ever satisfy (Slurm does
    // this at submission); otherwise they would block the queue head
    // forever.
    const auto &spec = cluster_.spec();
    const bool feasible =
        request.gpus <= spec.totalGpus() &&
        request.cpu_slots <= spec.nodes * spec.node.cpuSlots() &&
        request.ram_gb <= spec.nodes * spec.node.ram_gb;
    if (!feasible) {
        warn("rejecting job ", request.id,
             ": request exceeds cluster capacity");
        return;
    }

    index_.emplace(request.id, jobs_.size());
    Job record;
    record.request = request;
    jobs_.push_back(std::move(record));
    ++stats_.submitted;

    const JobId id = request.id;
    if (request.submit_time > sim_.now()) {
        sim_.at(request.submit_time, [this, id] { arrive(id); });
    } else {
        arrive(id);
    }
}

void
SlurmScheduler::arrive(JobId id)
{
    queue_.push_back(id);
    armFastPass();
    armBackfillPass();
}

void
SlurmScheduler::armFastPass()
{
    if (fast_pass_pending_)
        return;
    fast_pass_pending_ = true;
    sim_.after(options_.dispatch_latency, [this] {
        fast_pass_pending_ = false;
        schedulePass(/*with_backfill=*/false);
    });
}

void
SlurmScheduler::armBackfillPass()
{
    // Watchdog: a queue that outlives the workload by this much means
    // some request can never be placed — a scheduler bug, not load.
    if (sim_.now() > options_.wedge_watchdog_days * one_day &&
        !queue_.empty()) {
        const Job &head = job(queue_.front());
        panic("scheduler wedged: queue depth ", queue_.size(),
              ", running ", running_.size(), ", head job ",
              head.request.id, " gpus=", head.request.gpus,
              " slots=", head.request.cpu_slots,
              " ram=", head.request.ram_gb,
              " free_gpus=", cluster_.freeGpus(),
              " free_slots=", cluster_.freeCpuSlots());
    }
    if (backfill_pass_pending_ || !options_.backfill)
        return;
    backfill_pass_pending_ = true;
    sim_.after(options_.backfill_interval, [this] {
        backfill_pass_pending_ = false;
        schedulePass(/*with_backfill=*/true);
        // Keep the periodic pass alive while there is work to place.
        if (!queue_.empty())
            armBackfillPass();
    });
}

double
SlurmScheduler::decayedUsage(UserId user) const
{
    const auto it = usage_.find(user);
    if (it == usage_.end())
        return 0.0;
    auto &account = it->second;
    const double age = sim_.now() - account.as_of;
    if (age > 0.0) {
        account.decayed_gpu_seconds *=
            std::exp2(-age / options_.fairshare_half_life);
        account.as_of = sim_.now();
    }
    return account.decayed_gpu_seconds;
}

void
SlurmScheduler::chargeUsage(UserId user, double gpu_seconds)
{
    decayedUsage(user);  // bring the account up to date
    auto &account = usage_[user];
    account.decayed_gpu_seconds += gpu_seconds;
    account.as_of = sim_.now();
}

Seconds
SlurmScheduler::priorityKey(const Job &job) const
{
    // FCFS by submit time, with multi-GPU seniority: each requested
    // GPU is worth gpu_priority_boost seconds of queue age.
    Seconds key =
        job.request.submit_time -
        options_.gpu_priority_boost * static_cast<double>(job.request.gpus);
    // SLA seniority (zero by default): latency-sensitive classes can
    // buy virtual queue age, scavenger classes can give it back.
    key -= options_.sla_boost[static_cast<std::size_t>(job.request.sla)];
    if (options_.fairshare) {
        // Heavy recent consumers age backwards: one decayed GPU-hour
        // costs fairshare_weight seconds of seniority.
        key += options_.fairshare_weight *
               decayedUsage(job.request.user) / 3600.0;
    }
    return key;
}

void
SlurmScheduler::schedulePass(bool with_backfill)
{
    if (queue_.empty())
        return;

    SchedMetrics &metrics = SchedMetrics::get();
    (with_backfill ? metrics.backfill_passes : metrics.fast_passes)
        .add(1);
    obs::ScopedTimer pass_timer(metrics.pass_ns,
                                with_backfill ? "sched.pass.backfill"
                                              : "sched.pass.fast");

    std::stable_sort(queue_.begin(), queue_.end(),
                     [this](JobId a, JobId b) {
                         return priorityKey(job(a)) < priorityKey(job(b));
                     });

    // Fast path: start queue-head jobs in priority order until the
    // first one that does not fit.
    while (!queue_.empty()) {
        const JobId head = queue_.front();
        auto plan = placement_.place(cluster_, job(head).request);
        if (!plan) {
            metrics.placement_failures.add(1);
            break;
        }
        queue_.pop_front();
        start(head, std::move(*plan), /*via_backfill=*/false);
    }
    if (queue_.empty() || !with_backfill)
        return;

    // EASY backfill around the blocked head.
    const JobRequest &head = job(queue_.front()).request;
    std::vector<RunningFootprint> running;
    running.reserve(running_.size());
    const int slots_per_node = cluster_.spec().node.cpuSlots();
    for (JobId id : running_) {
        const Job &r = job(id);
        RunningFootprint fp;
        fp.expected_end = r.start_time + r.request.walltime_limit;
        fp.gpus = r.request.gpus;
        if (!r.request.isGpuJob()) {
            fp.whole_nodes = (r.request.cpu_slots + slots_per_node - 1) /
                             slots_per_node;
        }
        running.push_back(fp);
    }
    const BackfillWindow window =
        computeWindow(cluster_, running, head, sim_.now());

    int scanned = 0;
    for (auto it = std::next(queue_.begin());
         it != queue_.end() && scanned < options_.backfill_depth;) {
        ++scanned;
        metrics.backfill_attempts.add(1);
        const JobRequest &candidate = job(*it).request;
        if (!mayBackfill(window, candidate, cluster_.spec(), sim_.now())) {
            ++it;
            continue;
        }
        auto plan = placement_.place(cluster_, candidate);
        if (!plan) {
            metrics.placement_failures.add(1);
            ++it;
            continue;
        }
        const JobId id = *it;
        it = queue_.erase(it);
        metrics.backfill_hits.add(1);
        start(id, std::move(*plan), /*via_backfill=*/true);
    }
}

void
SlurmScheduler::start(JobId id, Allocation plan, bool via_backfill)
{
    Job &record = mutableJob(id);
    AIWC_CHECK(record.state == JobState::Queued,
                "starting a non-queued job ", id);

    placement_.commit(cluster_, id, plan);
    record.allocation = std::move(plan);
    record.state = JobState::Running;
    record.start_time = sim_.now();
    record.backfilled = via_backfill;
    running_.push_back(id);
    ++stats_.started;
    if (via_backfill)
        ++stats_.backfilled;

    SchedMetrics &metrics = SchedMetrics::get();
    metrics.jobs_started.add(1);
    // Queue wait in (integer) sim-seconds: the operator-facing wait
    // distribution, straight off the scheduler rather than recomputed
    // by the analyzers afterwards.
    metrics.queue_wait_s.observe(static_cast<std::uint64_t>(
        record.start_time - record.request.submit_time));

    // Slurm prolog fires as the job launches: this is where the paper
    // starts nvidia-smi / CPU time-series collection.
    if (prolog_)
        prolog_(record);

    sim_.after(record.request.observedDuration(), [this, id] { finish(id); });
}

void
SlurmScheduler::finish(JobId id)
{
    Job &record = mutableJob(id);
    AIWC_CHECK(record.state == JobState::Running,
                "finishing a non-running job ", id);

    record.state = JobState::Finished;
    record.end_time = sim_.now();
    record.terminal = record.request.observedEnd();
    placement_.release(cluster_, record.allocation);

    const auto it = std::find(running_.begin(), running_.end(), id);
    AIWC_CHECK(it != running_.end(), "finished job not in running set");
    running_.erase(it);

    ++stats_.finished;
    SchedMetrics::get().jobs_finished.add(1);
    stats_.gpu_hours += record.gpuHours();
    if (options_.fairshare) {
        chargeUsage(record.request.user,
                    record.gpuHours() * 3600.0);
    }

    // Slurm epilog: telemetry is stopped and spooled back here.
    if (epilog_)
        epilog_(record);

    if (!queue_.empty()) {
        armFastPass();
        armBackfillPass();
    }
}

void
SlurmScheduler::auditInvariants() const
{
    cluster_.auditInvariants();

    AIWC_CHECK_EQ(jobs_.size(), stats_.submitted,
                  "job ledger out of step with the submitted counter");
    AIWC_CHECK_EQ(stats_.started, running_.size() + stats_.finished,
                  "started jobs unaccounted for");
    std::size_t queued_state = 0, running_state = 0, finished_state = 0;
    for (const Job &record : jobs_) {
        switch (record.state) {
          case JobState::Queued: ++queued_state; break;
          case JobState::Running: ++running_state; break;
          case JobState::Finished: ++finished_state; break;
        }
    }
    AIWC_CHECK_EQ(running_state, running_.size(),
                  "Running-state jobs out of step with the running set");
    AIWC_CHECK_EQ(finished_state, stats_.finished,
                  "Finished-state jobs out of step with the counter");
    // Accepted jobs whose arrival event has not fired yet are Queued
    // but not in the queue deque, so this is an upper bound only.
    AIWC_CHECK_LE(queue_.size(), queued_state,
                  "queue deque holds non-Queued jobs");

    for (JobId id : queue_) {
        const Job &queued = job(id);
        AIWC_CHECK(queued.state == JobState::Queued,
                   "queued job ", id, " is not in the Queued state");
        AIWC_CHECK(queued.allocation.empty(),
                   "queued job ", id, " already holds an allocation");
    }

    // Every running job's allocation must be exactly backed by cluster
    // state; counting the allocated GPUs also catches the converse — a
    // busy GPU no running job accounts for (a leak).
    std::size_t allocated_gpus = 0;
    for (JobId id : running_) {
        const Job &running_job = job(id);
        AIWC_CHECK(running_job.state == JobState::Running,
                   "job ", id, " in the running set is not Running");
        AIWC_CHECK(!running_job.allocation.empty(),
                   "running job ", id, " holds no allocation");
        AIWC_CHECK_GE(running_job.start_time, 0.0,
                      "running job ", id, " never started");
        for (const auto &share : running_job.allocation.shares) {
            const sim::Node &node = cluster_.node(share.node);
            AIWC_CHECK_GT(node.residentJobs(), 0,
                          "job ", id, " holds CPU on empty node ",
                          share.node);
            for (GpuId gid : share.gpus) {
                const sim::Gpu &gpu = cluster_.gpu(gid);
                AIWC_CHECK(gpu.busy(), "GPU ", gid, " allocated to job ",
                           id, " but idle in the cluster");
                AIWC_CHECK_EQ(gpu.job(), id,
                              "GPU ", gid, " backs a different job");
                AIWC_CHECK_EQ(cluster_.nodeOfGpu(gid), share.node,
                              "GPU ", gid, " lives off its share's node");
                ++allocated_gpus;
            }
        }
    }
    const int busy_gpus = cluster_.spec().totalGpus() - cluster_.freeGpus();
    AIWC_CHECK_EQ(static_cast<std::size_t>(busy_gpus), allocated_gpus,
                  "busy GPUs not covered by running allocations (leak)");
}

} // namespace aiwc::sched
