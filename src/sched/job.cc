#include "aiwc/sched/job.hh"

namespace aiwc::sched
{

int
Allocation::totalGpus() const
{
    int n = 0;
    for (const auto &s : shares)
        n += static_cast<int>(s.gpus.size());
    return n;
}

int
Allocation::totalCpuSlots() const
{
    int n = 0;
    for (const auto &s : shares)
        n += s.cpu_slots;
    return n;
}

std::vector<GpuId>
Allocation::allGpus() const
{
    std::vector<GpuId> out;
    for (const auto &s : shares)
        out.insert(out.end(), s.gpus.begin(), s.gpus.end());
    return out;
}

double
Job::gpuHours() const
{
    if (state != JobState::Finished)
        return 0.0;
    return static_cast<double>(request.gpus) * runTime() / 3600.0;
}

} // namespace aiwc::sched
