#include "aiwc/sched/backfill.hh"

#include <algorithm>
#include <vector>

#include "aiwc/base/check.hh"

namespace aiwc::sched
{

namespace
{

/** Nodes a CPU-only request claims, rounding slots up to whole nodes. */
int
wholeNodesFor(const JobRequest &request, const sim::ClusterSpec &spec)
{
    if (request.isGpuJob())
        return 0;
    const int per_node = spec.node.cpuSlots();
    return (request.cpu_slots + per_node - 1) / per_node;
}

} // namespace

BackfillWindow
computeWindow(const sim::Cluster &cluster,
              std::span<const RunningFootprint> running,
              const JobRequest &head, Seconds now)
{
    BackfillWindow window;

    const auto &spec = cluster.spec();
    AIWC_DCHECK_GE(head.gpus, 0, "head job with negative GPU demand");
    AIWC_DCHECK_GT(head.cpu_slots, 0, "head job with no CPU demand");
    int free_gpus = cluster.freeGpus();
    int free_nodes = 0;
    for (const auto &node : cluster.nodes())
        if (node.freeCpuSlots() == spec.node.cpuSlots())
            ++free_nodes;

    const int need_gpus = head.gpus;
    const int need_nodes = wholeNodesFor(head, spec);

    for (const auto &fp : running) {
        AIWC_DCHECK_GE(fp.gpus, 0, "running footprint with negative GPUs");
        AIWC_DCHECK_GE(fp.whole_nodes, 0,
                       "running footprint with negative nodes");
    }
    std::vector<RunningFootprint> by_end(running.begin(), running.end());
    std::sort(by_end.begin(), by_end.end(),
              [](const RunningFootprint &a, const RunningFootprint &b) {
                  return a.expected_end < b.expected_end;
              });

    window.shadow_time = now;
    for (const auto &fp : by_end) {
        if (free_gpus >= need_gpus && free_nodes >= need_nodes)
            break;
        free_gpus += fp.gpus;
        free_nodes += fp.whole_nodes;
        window.shadow_time = std::max(window.shadow_time, fp.expected_end);
    }

    // If the demand still cannot be met (over-subscribed request), the
    // shadow extends past every running job; keep the last end time.
    window.spare_gpus = std::max(0, free_gpus - need_gpus);
    window.spare_nodes = std::max(0, free_nodes - need_nodes);
    return window;
}

bool
mayBackfill(const BackfillWindow &window, const JobRequest &candidate,
            const sim::ClusterSpec &spec, Seconds now)
{
    AIWC_DCHECK_GE(candidate.walltime_limit, 0.0,
                   "candidate with a negative wall-time limit");
    const Seconds expected_end = now + candidate.walltime_limit;
    if (expected_end <= window.shadow_time)
        return true;
    // Otherwise it must fit in capacity the head will not consume.
    if (candidate.isGpuJob())
        return candidate.gpus <= window.spare_gpus;
    return wholeNodesFor(candidate, spec) <= window.spare_nodes;
}

} // namespace aiwc::sched
