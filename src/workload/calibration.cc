#include "aiwc/workload/calibration.hh"


namespace aiwc::workload
{

const ClassParams &
CalibrationProfile::forClass(Lifecycle c) const
{
    return classes[static_cast<std::size_t>(c)];
}

const InterfaceWeights &
CalibrationProfile::interfacesFor(Lifecycle c) const
{
    return interfaces[static_cast<std::size_t>(c)];
}

const GpuCountWeights &
CalibrationProfile::gpuCountsFor(Lifecycle c) const
{
    return gpu_counts[static_cast<std::size_t>(c)];
}

CalibrationProfile
CalibrationProfile::supercloud()
{
    CalibrationProfile p;

    const auto idx = [](Lifecycle c) { return static_cast<std::size_t>(c); };

    // ---- Lifecycle-class job mix (Fig. 15a): 60 / 18 / 19 / 3.5%. ----
    ClassParams mature;
    mature.job_fraction = 0.595;
    // Median mature runtime is 36 min (Sec. VI); sigma chosen with the
    // other classes so the overall mixture hits the Fig. 3a quantiles
    // p25/p50/p75 = 4/30/300 min.
    mature.runtime = {36.0, 2.0, 0.05, 12.0, 1.0};
    mature.util = {0.12, 0.46, 2.0, 0.18, 8.0, 0.17, 3.0};
    mature.phase = {0.84, 4.5, 50.0, 1.75, 1.25};
    mature.multi_gpu_runtime_exponent = 0.3;
    mature.multi_gpu_prob_scale = 0.9;
    mature.idle_gpu_prob = 0.45;

    ClassParams exploratory;
    exploratory.job_fraction = 0.18;
    // Median exploratory runtime is 62 min; heavier tail + higher
    // multi-GPU propensity push its GPU-hour share to ~34% (Fig. 15b).
    exploratory.runtime = {62.0, 2.25, 0.02, 12.0, 1.0};
    exploratory.util = {0.14, 0.38, 2.0, 0.18, 8.0, 0.15, 3.0};
    exploratory.phase = {0.85, 5.0, 50.0, 1.75, 1.25};
    exploratory.multi_gpu_runtime_exponent = 0.3;
    exploratory.multi_gpu_prob_scale = 1.3;
    exploratory.idle_gpu_prob = 0.45;
    // Hyper-parameter sweeps land as job arrays.
    exploratory.array_prob = 0.35;
    exploratory.array_median = 6.0;
    exploratory.array_sigma = 0.7;

    ClassParams development;
    development.job_fraction = 0.19;
    // Debug runs: short, crash-prone (the abort spike also produces the
    // <30 s jobs the paper filters before GPU analysis).
    development.runtime = {9.0, 2.4, 0.22, 12.0, 1.2};
    development.util = {0.55, 0.12, 1.5, 0.14, 8.0, 0.08, 2.5};
    development.phase = {0.12, 1.6, 40.0, 1.75, 1.25};
    development.multi_gpu_runtime_exponent = 0.2;
    development.multi_gpu_prob_scale = 0.6;
    development.idle_gpu_prob = 0.5;

    ClassParams ide;
    ide.job_fraction = 0.035;
    // IDE sessions run until their 12/24 h timeout; the runtime body is
    // irrelevant (the generator pins duration past the limit) but kept
    // sane for ablations that disable the timeout behaviour.
    ide.runtime = {600.0, 1.0, 0.0, 12.0, 1.0};
    ide.util = {0.78, 0.07, 2.0, 0.14, 8.0, 0.07, 2.5};
    ide.phase = {0.05, 1.6, 35.0, 1.75, 1.25};
    ide.multi_gpu_runtime_exponent = 0.0;
    ide.multi_gpu_prob_scale = 2.0;
    ide.idle_gpu_prob = 0.5;

    p.classes[idx(Lifecycle::Mature)] = mature;
    p.classes[idx(Lifecycle::Exploratory)] = exploratory;
    p.classes[idx(Lifecycle::Development)] = development;
    p.classes[idx(Lifecycle::Ide)] = ide;

    // ---- Interface mix per class, chosen so the marginals match ----
    // Fig. 5's population: map-reduce 1%, batch 30%, interactive 4%,
    // other 65% — and so interactive jobs skew development/IDE.
    p.interfaces[idx(Lifecycle::Mature)] = {0.012, 0.36, 0.005, 0.623};
    p.interfaces[idx(Lifecycle::Exploratory)] = {0.005, 0.25, 0.005, 0.74};
    p.interfaces[idx(Lifecycle::Development)] = {0.010, 0.22, 0.08, 0.69};
    p.interfaces[idx(Lifecycle::Ide)] = {0.0, 0.02, 0.70, 0.28};

    // ---- GPU-count weights GIVEN the user rolled multi-GPU ----
    // (bucket 0, "1 GPU", is unused on that path). Overall: 84% of
    // jobs single-GPU, ~85% of multi-GPU jobs use 2 GPUs (Fig. 13a).
    p.gpu_counts[idx(Lifecycle::Mature)] = {0, 0.86, 0.08, 0.03,
                                            0.02, 0.01};
    p.gpu_counts[idx(Lifecycle::Exploratory)] = {0, 0.78, 0.11, 0.05,
                                                 0.04, 0.02};
    p.gpu_counts[idx(Lifecycle::Development)] = {0, 0.92, 0.06, 0.02,
                                                 0.0, 0.0};
    p.gpu_counts[idx(Lifecycle::Ide)] = {0, 0.95, 0.05, 0.0, 0.0, 0.0};

    // ---- Users (Sec. IV) ----
    // Two-component activity: ~20% heavy users carry ~83% of jobs
    // (within them, the top quarter carries ~53%, reproducing "top 5%
    // of users submit 44%"), light users have median ~35 jobs.
    // Values that differ from the header defaults; everything else in
    // UserParams is already the tuned Supercloud value.
    p.users.num_users = 191;
    p.users.skill_slope = 0.28;
    p.users.skill_noise = 0.10;
    p.users.single_gpu_only_users = 0.34;
    p.users.multi_gpu_prob_mean = 0.215;

    // ---- CPU-only jobs (Fig. 3): defaults from the header are the
    // tuned values (whole-node requests up to 32 nodes, job arrays).

    // Remaining defaults declared in the header are already the tuned
    // Supercloud values (arrival shape, power model, monitoring
    // cadence, saturation probabilities, timeout policy).
    return p;
}

} // namespace aiwc::workload
