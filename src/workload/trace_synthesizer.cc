#include "aiwc/workload/trace_synthesizer.hh"

#include <algorithm>
#include <cmath>

#include "aiwc/base/check.hh"
#include "aiwc/base/logging.hh"
#include "aiwc/common/parallel.hh"
#include "aiwc/obs/trace.hh"
#include "aiwc/dist/distributions.hh"
#include "aiwc/sim/cluster_factory.hh"
#include "aiwc/sim/simulation.hh"
#include "aiwc/telemetry/collector.hh"
#include "aiwc/telemetry/sampler.hh"
#include "aiwc/workload/arrival_process.hh"
#include "aiwc/workload/job_generator.hh"
#include "aiwc/workload/user_population.hh"

namespace aiwc::workload
{

namespace
{

/** Sample a job-array size from its log-normal parameters. */
int
arraySize(double median, double sigma, int max, Rng &rng)
{
    const dist::LogNormal body(median, sigma);
    const auto k = static_cast<int>(std::lround(body.sample(rng)));
    return std::clamp(k, 2, max);
}

/**
 * Monte-Carlo estimate of the expected jobs produced per arrival of
 * one kind (single submission vs. array expansion).
 */
double
expectedExpansion(double array_prob, double median, double sigma, int max,
                  Rng &rng)
{
    if (array_prob <= 0.0)
        return 1.0;
    constexpr int trials = 4000;
    double acc = 0.0;
    for (int i = 0; i < trials; ++i) {
        acc += rng.chance(array_prob)
                   ? static_cast<double>(arraySize(median, sigma, max, rng))
                   : 1.0;
    }
    return acc / trials;
}

/** Nominal monitoring bytes a job writes at the real 100 ms cadence. */
std::uint64_t
nominalSpoolBytes(const sched::Job &job,
                  const telemetry::MonitoringParams &mon)
{
    const double duration = job.runTime();
    const double gpu_rows = job.request.isGpuJob()
                                ? duration / mon.gpu_interval *
                                      job.request.gpus
                                : 0.0;
    const double cpu_rows =
        duration / mon.cpu_interval *
        static_cast<double>(job.allocation.shares.size());
    // One nvidia-smi row ~ the Sample struct; one CPU row ~ 64 bytes.
    return static_cast<std::uint64_t>(
        gpu_rows * sizeof(telemetry::Sample) + cpu_rows * 64.0);
}

} // namespace

TraceSynthesizer::TraceSynthesizer(const CalibrationProfile &profile,
                                   const SynthesisOptions &options)
    : profile_(profile), options_(options)
{
    AIWC_ASSERT(options.scale > 0.0, "scale must be positive");
}

int
TraceSynthesizer::scaledUsers() const
{
    return std::max(
        10, static_cast<int>(std::lround(profile_.users.num_users *
                                         options_.scale)));
}

int
TraceSynthesizer::scaledNodes() const
{
    return std::max(4, static_cast<int>(std::lround(224 * options_.scale)));
}

int
TraceSynthesizer::scaledTimeseriesJobs() const
{
    return std::max(
        50, static_cast<int>(std::lround(
                profile_.monitoring.timeseries_jobs * options_.scale)));
}

SynthesisResult
TraceSynthesizer::run() const
{
    SynthesisResult result;
    runImpl(result, [&result](core::JobRecord &&rec) {
        result.dataset.add(std::move(rec));
    });
    return result;
}

StreamReplayResult
TraceSynthesizer::runStreaming(const RecordSink &sink) const
{
    AIWC_CHECK(sink, "streaming replay needs a record sink");
    // The scratch result holds the run-level aggregates and the
    // internal telemetry profiles; its dataset stays empty — records
    // flow straight into the sink.
    SynthesisResult scratch;
    StreamReplayResult out;
    runImpl(scratch, [&](core::JobRecord &&rec) {
        ++out.records;
        sink(std::move(rec));
    });
    out.scheduler_stats = scratch.scheduler_stats;
    out.num_users = scratch.num_users;
    out.cluster_nodes = scratch.cluster_nodes;
    out.central_store_bytes = scratch.central_store_bytes;
    out.peak_spool_bytes = scratch.peak_spool_bytes;
    return out;
}

void
TraceSynthesizer::runImpl(SynthesisResult &result,
                          const RecordSink &sink) const
{
    obs::TraceSpan run_span("synthesize.run");
    obs::MetricsRegistry::global().counter("aiwc.workload.synthesis_runs")
        .add(1);
    Rng master(options_.seed);
    Rng pop_rng = master.split();
    Rng arrival_rng = master.split();
    Rng job_rng = master.split();
    Rng detail_rng = master.split();

    result.num_users = scaledUsers();
    result.cluster_nodes = scaledNodes();

    const UserPopulation population(profile_, pop_rng, result.num_users);
    const JobGenerator generator(profile_);

    // --- Arrival accounting: expected jobs per arrival of each kind,
    // so arrays do not distort the target job count or CPU fraction.
    Rng mc_rng = master.split();
    const CpuJobParams &cj = profile_.cpu_jobs;
    const double e_cpu = expectedExpansion(
        cj.array_prob, cj.array_median, cj.array_sigma, cj.array_max,
        mc_rng);

    // Per-class corrections: arrays multiply a class's jobs, and the
    // 30 s filter removes part of them. The paper's Fig. 15 mix is a
    // *post-filter job* mix, so the arrival-level class draw weights
    // are job_fraction / (expansion x survival), renormalized.
    std::array<double, num_lifecycles> expansion{}, survival{},
        class_correction{};
    for (int c = 0; c < num_lifecycles; ++c) {
        const auto i = static_cast<std::size_t>(c);
        const ClassParams &cp = profile_.classes[i];
        expansion[i] =
            expectedExpansion(cp.array_prob, cp.array_median,
                              cp.array_sigma, cp.array_max, mc_rng);
        // Activity-weighted survival: heavy users run shorter jobs
        // (negative runtime slope), so their jobs are filtered more
        // often — average over users drawn by activity.
        double surv = 0.0;
        constexpr int user_draws = 32;
        for (int d = 0; d < user_draws; ++d) {
            const UserProfile &u = population.sampleByActivity(mc_rng);
            surv += generator.survivalProbability(
                static_cast<Lifecycle>(c), mc_rng, 250,
                u.runtime_scale);
        }
        survival[i] = surv / user_draws;
        class_correction[i] = 1.0 / (expansion[i] * survival[i]);
    }
    // Expected post-expansion jobs per GPU arrival under the corrected
    // class draw: sum over classes of P(draw c) * expansion_c.
    double e_gpu = 0.0;
    {
        double wsum = 0.0, jobs_per_gpu_arrival = 0.0;
        for (int c = 0; c < num_lifecycles; ++c) {
            const auto i = static_cast<std::size_t>(c);
            const double w = profile_.classes[i].job_fraction *
                             class_correction[i];
            wsum += w;
            jobs_per_gpu_arrival += w * expansion[i];
        }
        e_gpu = jobs_per_gpu_arrival / wsum;
    }

    // Probability an *arrival* is CPU-side such that the *job* mix
    // hits the calibrated CPU fraction.
    const double f = cj.fraction_of_jobs;
    const double q_cpu =
        f * e_gpu / (e_cpu * (1.0 - f) + f * e_gpu);
    const double jobs_per_arrival =
        q_cpu * e_cpu + (1.0 - q_cpu) * e_gpu;

    const int target_jobs = std::max(
        50, static_cast<int>(std::lround(profile_.arrivals.total_jobs *
                                         options_.scale)));
    const int target_arrivals = std::max(
        10,
        static_cast<int>(std::lround(target_jobs / jobs_per_arrival)));

    const ArrivalProcess arrivals(profile_.arrivals, target_arrivals);
    const std::vector<Seconds> instants = arrivals.generate(arrival_rng);

    // --- Generate the job stream. ---
    std::vector<GeneratedJob> jobs;
    jobs.reserve(static_cast<std::size_t>(target_jobs * 11 / 10));
    JobId next_id = 0;
    std::size_t gpu_jobs = 0;
    obs::TraceSpan generate_span("synthesize.generate");
    for (const Seconds t : instants) {
        const UserProfile &user = population.sampleByActivity(job_rng);
        if (job_rng.chance(q_cpu)) {
            int n = 1;
            if (job_rng.chance(cj.array_prob)) {
                n = arraySize(cj.array_median, cj.array_sigma,
                              cj.array_max, job_rng);
            }
            for (int i = 0; i < n; ++i) {
                GeneratedJob j;
                j.request = generator.cpuJob(user, t, next_id++, job_rng);
                jobs.push_back(std::move(j));
            }
        } else {
            // Class draw from the user's mix, corrected for array
            // expansion and filter survival (see above).
            std::array<double, num_lifecycles> w{};
            double wsum = 0.0;
            for (int c = 0; c < num_lifecycles; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                w[ci] = user.class_mix[ci] * class_correction[ci];
                wsum += w[ci];
            }
            double u = job_rng.uniform() * wsum;
            int drawn = num_lifecycles - 1;
            for (int c = 0; c < num_lifecycles; ++c) {
                u -= w[static_cast<std::size_t>(c)];
                if (u <= 0.0) {
                    drawn = c;
                    break;
                }
            }
            const Lifecycle c = static_cast<Lifecycle>(drawn);
            const ClassParams &cp = profile_.forClass(c);
            int n = 1;
            if (job_rng.chance(cp.array_prob)) {
                n = arraySize(cp.array_median, cp.array_sigma,
                              cp.array_max, job_rng);
            }
            for (int i = 0; i < n; ++i) {
                jobs.push_back(
                    generator.gpuJob(user, t, next_id++, job_rng, c));
                ++gpu_jobs;
            }
        }
    }

    generate_span.end();
    obs::MetricsRegistry::global().counter("aiwc.workload.jobs_generated")
        .add(jobs.size());

    // --- Mark the detailed time-series subset. ---
    const double detail_prob =
        gpu_jobs == 0 ? 0.0
                      : std::min(1.0, static_cast<double>(
                                          scaledTimeseriesJobs()) /
                                          static_cast<double>(gpu_jobs));
    std::vector<bool> detailed(jobs.size(), false);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        if (jobs[i].request.isGpuJob())
            detailed[i] = detail_rng.chance(detail_prob);

    result.profiles.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        result.profiles[jobs[i].request.id] = jobs[i].profile;

    // --- Telemetry plumbing. ---
    const telemetry::PowerModel power(profile_.power);
    const telemetry::GpuSampler sampler(power, profile_.monitoring);
    telemetry::NodeSpool spool;
    telemetry::EpilogCollector collector(spool);

    auto finalize = [&](const sched::Job &job) {
        const JobId id = job.request.id;
        core::JobRecord rec;
        rec.id = id;
        rec.user = job.request.user;
        rec.interface = job.request.interface;
        rec.true_class = job.request.lifecycle;
        rec.terminal = job.terminal;
        rec.submit_time = job.request.submit_time;
        rec.start_time = job.start_time;
        rec.end_time = job.end_time;
        rec.walltime_limit = job.request.walltime_limit;
        rec.gpus = job.request.gpus;
        rec.cpu_slots = job.request.cpu_slots;
        rec.ram_gb = job.request.ram_gb;

        if (job.request.isGpuJob() && options_.telemetry &&
            job.runTime() > 0.0) {
            const bool detail = detailed[id];
            auto tele = sampler.sampleJob(result.profiles[id],
                                          job.runTime(), detail);
            rec.per_gpu = std::move(tele.per_gpu);
            rec.has_timeseries = detail;
            if (detail)
                rec.phases = std::move(tele.phases);
        }
        sink(std::move(rec));
    };

    if (options_.through_scheduler) {
        obs::TraceSpan replay_span("synthesize.scheduler_replay");
        sim::Cluster cluster(sim::miniSupercloudSpec(result.cluster_nodes));
        sim::Simulation sim;
        sched::SlurmScheduler scheduler(sim, cluster);

        // A scaled-down cluster cannot host the largest requests the
        // full-size workload contains; clamp them so the scaled study
        // keeps the same load/capacity ratio instead of dropping jobs.
        const auto &spec = cluster.spec();
        const int max_gpus = std::max(spec.totalGpus() / 2, 2);
        const int max_slots =
            std::max(spec.nodes / 2, 1) * spec.node.cpuSlots();
        for (auto &j : jobs) {
            auto &req = j.request;
            if (req.gpus > max_gpus) {
                req.gpus = max_gpus;
                j.profile.num_gpus = max_gpus;
                j.profile.idle_gpus =
                    std::min(j.profile.idle_gpus, max_gpus - 1);
                result.profiles[req.id] = j.profile;
            }
            req.cpu_slots = std::min(req.cpu_slots, max_slots);
            req.ram_gb = std::min(
                req.ram_gb, spec.node.ram_gb * std::max(spec.nodes / 2, 1));
        }

        scheduler.setProlog([&](const sched::Job &job) {
            std::vector<NodeId> nodes;
            nodes.reserve(job.allocation.shares.size());
            for (const auto &share : job.allocation.shares)
                nodes.push_back(share.node);
            collector.onProlog(job.request.id, nodes);
        });
        scheduler.setEpilog([&](const sched::Job &job) {
            collector.recordSamples(
                job.request.id,
                nominalSpoolBytes(job, profile_.monitoring));
            collector.onEpilog(job.request.id);
            finalize(job);
        });

        for (const auto &j : jobs)
            scheduler.submit(j.request);
        sim.run();
        // End-of-run self-check: after the queue drains, every resource
        // must be back in the free pool and the ledgers must balance.
        // A leak here would silently skew every downstream figure.
        scheduler.auditInvariants();
        AIWC_CHECK_EQ(cluster.freeGpus(), cluster.spec().totalGpus(),
                      "GPUs leaked by the scheduler replay");
        result.scheduler_stats = scheduler.stats();
    } else {
        for (const auto &j : jobs) {
            sched::Job job;
            job.request = j.request;
            job.state = sched::JobState::Finished;
            job.start_time = j.request.submit_time;
            job.end_time = job.start_time + j.request.observedDuration();
            job.terminal = j.request.observedEnd();
            finalize(job);
        }
    }

    result.central_store_bytes = collector.centralStoreBytes();
    result.peak_spool_bytes = collector.peakNodeOccupancy();
}

std::uint64_t
TraceSynthesizer::replicateSeed(std::uint64_t base, int replicate)
{
    AIWC_CHECK(replicate >= 0, "replicate index must be non-negative");
    if (replicate == 0)
        return base;
    // splitmix64 finalizer over a golden-ratio stride: adjacent
    // replicate indices land on uncorrelated seeds.
    std::uint64_t z = base +
                      0x9e3779b97f4a7c15ull *
                          static_cast<std::uint64_t>(replicate);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::vector<SynthesisResult>
TraceSynthesizer::runReplicates(int count) const
{
    AIWC_CHECK(count >= 0, "replicate count must be non-negative");
    std::vector<SynthesisResult> results(
        static_cast<std::size_t>(count));
    // Each replicate is an independent pipeline writing its own slot,
    // so the fan-out is embarrassingly parallel and the result vector
    // is identical for any pool size.
    obs::MetricsRegistry::global().counter("aiwc.workload.replicates")
        .add(results.size());
    parallelFor(globalPool(), results.size(), [&](std::size_t r) {
        obs::TraceSpan span("synthesize.replicate " + std::to_string(r));
        SynthesisOptions opts = options_;
        opts.seed = replicateSeed(options_.seed, static_cast<int>(r));
        results[r] = TraceSynthesizer(profile_, opts).run();
    });
    return results;
}

} // namespace aiwc::workload
