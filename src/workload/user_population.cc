#include "aiwc/workload/user_population.hh"

#include <algorithm>
#include <cmath>

#include "aiwc/base/logging.hh"
#include "aiwc/dist/distributions.hh"

namespace aiwc::workload
{

int
UserProfile::maxBucket() const
{
    switch (tier) {
      case GpuTier::SingleOnly: return 0;
      case GpuTier::TwoGpu: return 1;
      case GpuTier::Medium: return 3;  // buckets {2, 4, 8}
      case GpuTier::Large: return 5;   // up to 32 GPUs
    }
    return 0;
}

UserPopulation::UserPopulation(const CalibrationProfile &profile, Rng &rng,
                               int num_users)
{
    const UserParams &up = profile.users;
    const int n = num_users > 0 ? num_users : up.num_users;
    AIWC_ASSERT(n >= 1, "population needs at least one user");
    users_.reserve(static_cast<std::size_t>(n));
    cumulative_weight_.reserve(static_cast<std::size_t>(n));

    // First pass: raw draws.
    double sum_log_w = 0.0;
    for (int i = 0; i < n; ++i) {
        UserProfile u;
        u.id = static_cast<UserId>(i);

        // Two-component activity (heavy cohort + light long-tail).
        const bool heavy = rng.chance(up.heavy_user_fraction);
        const double median =
            heavy ? up.heavy_median_jobs : up.light_median_jobs;
        const double sigma = heavy ? up.heavy_sigma : up.light_sigma;
        u.activity_weight = median * std::exp(sigma * rng.gaussian());
        sum_log_w += std::log(u.activity_weight);

        // Per-user lifecycle mix ~ Dirichlet around the cohort centre.
        // Small users scatter across the simplex (Fig. 17: many users
        // are effectively single-class); busy users run balanced
        // workflows — concentration grows with activity, which keeps
        // the fleet mix (dominated by busy users) stable.
        const auto &centre =
            heavy ? up.heavy_class_mix : up.light_class_mix;
        const double concentration =
            up.class_mix_concentration *
            (1.0 + u.activity_weight / up.activity_mix_scale);
        double mix_total = 0.0;
        for (int c = 0; c < num_lifecycles; ++c) {
            const double alpha = concentration *
                                 centre[static_cast<std::size_t>(c)] *
                                 static_cast<double>(num_lifecycles);
            const double g = dist::sampleGamma(rng, std::max(alpha, 0.02));
            u.class_mix[static_cast<std::size_t>(c)] = g;
            mix_total += g;
        }
        for (auto &m : u.class_mix)
            m /= mix_total;

        // GPU tier: quotas from Sec. V, biased toward the heavy
        // cohort (production teams hold the big allocations and are
        // almost never single-GPU-only). The light quotas are solved
        // so the population totals still match the paper.
        const double hf = up.heavy_user_fraction;
        const double bias = up.heavy_tier_bias;
        const double light_factor =
            (1.0 - hf * bias) / (1.0 - hf);  // keeps the mean quota
        const double large_quota =
            up.large_tier_users * (heavy ? bias : light_factor);
        const double medium_quota =
            up.medium_tier_users * (heavy ? bias : light_factor);
        const double single_only_quota =
            up.single_gpu_only_users *
            (heavy ? up.heavy_single_only_factor : 1.0);
        const double roll = rng.uniform();
        if (roll < large_quota) {
            u.tier = GpuTier::Large;
        } else if (roll < large_quota + medium_quota) {
            u.tier = GpuTier::Medium;
        } else if (roll < 1.0 - single_only_quota) {
            u.tier = GpuTier::TwoGpu;
        } else {
            u.tier = GpuTier::SingleOnly;
        }
        if (u.tier != GpuTier::SingleOnly) {
            const double kappa =
                up.multi_gpu_prob_kappa *
                (heavy ? up.heavy_multi_kappa_factor : 1.0);
            const dist::Beta beta =
                dist::Beta::fromMean(up.multi_gpu_prob_mean, kappa);
            u.multi_gpu_prob = beta.sample(rng);
        }

        // Memory-behaviour traits (Fig. 4a tails vs. Fig. 10 medians):
        // a minority of users run bandwidth-bound or near-capacity
        // codes routinely; everyone else only incidentally. Heavy
        // users carry damped trait odds (see UserParams).
        const double membw_trait_prob =
            up.membw_intensive_users *
            (heavy ? up.heavy_membw_trait_factor : 1.0);
        const double large_trait_prob =
            up.large_model_users *
            (heavy ? up.heavy_large_model_factor : 1.0);
        u.membw_intensive_prob = rng.chance(membw_trait_prob)
                                     ? up.membw_intensive_job_prob
                                     : up.membw_casual_job_prob;
        u.large_model_prob = rng.chance(large_trait_prob)
                                 ? up.large_model_job_prob
                                 : up.large_model_casual_prob;
        heavy_.push_back(heavy);
        users_.push_back(u);
    }

    // Second pass: couple skill and job length to (centred)
    // log-activity, producing the Fig. 12 correlation structure —
    // expert users utilize GPUs better; heavy submitters run shorter
    // sweep-style jobs.
    const double mean_log_w = sum_log_w / static_cast<double>(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < users_.size(); ++i) {
        auto &u = users_[i];
        const double centred = std::log(u.activity_weight) - mean_log_w;
        const double skill = up.skill_slope * centred +
                             up.skill_noise * rng.gaussian();
        u.util_scale = std::exp(skill);
        const double sigma = heavy_[i] ? up.heavy_runtime_scale_sigma
                                       : up.runtime_scale_sigma;
        const double len =
            up.runtime_slope * centred + sigma * rng.gaussian();
        u.runtime_scale = std::exp(len);

        acc += u.activity_weight;
        cumulative_weight_.push_back(acc);
    }

    // Renormalize both scales so their *activity-weighted* geometric
    // mean is exactly 1: the fleet-level (job-weighted) runtime and
    // utilization medians then track the class calibration, and the
    // slope/sigma knobs only shape the per-user structure of
    // Figs. 10-12 — never the fleet marginals of Figs. 3-4.
    double total_w = 0.0, log_rt = 0.0, log_util = 0.0;
    for (const auto &u : users_) {
        total_w += u.activity_weight;
        log_rt += u.activity_weight * std::log(u.runtime_scale);
        log_util += u.activity_weight * std::log(u.util_scale);
    }
    const double rt_norm = std::exp(log_rt / total_w);
    const double util_norm = std::exp(log_util / total_w);
    for (auto &u : users_) {
        u.runtime_scale =
            std::clamp(u.runtime_scale / rt_norm, 0.05, 20.0);
        u.util_scale = std::clamp(u.util_scale / util_norm, 0.4, 2.2);
    }
}

const UserProfile &
UserPopulation::user(UserId id) const
{
    AIWC_ASSERT(id < users_.size(), "user id out of range: ", id);
    return users_[id];
}

const UserProfile &
UserPopulation::sampleByActivity(Rng &rng) const
{
    const double u = rng.uniform() * cumulative_weight_.back();
    const auto it = std::upper_bound(cumulative_weight_.begin(),
                                     cumulative_weight_.end(), u);
    const auto idx = std::min<std::size_t>(
        static_cast<std::size_t>(it - cumulative_weight_.begin()),
        users_.size() - 1);
    return users_[idx];
}

double
UserPopulation::multiGpuCapableFraction() const
{
    std::size_t capable = 0;
    for (const auto &u : users_)
        if (u.tier != GpuTier::SingleOnly)
            ++capable;
    return static_cast<double>(capable) /
           static_cast<double>(users_.size());
}

} // namespace aiwc::workload
