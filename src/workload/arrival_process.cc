#include "aiwc/workload/arrival_process.hh"

#include <algorithm>
#include <cmath>

#include "aiwc/base/logging.hh"

namespace aiwc::workload
{

ArrivalProcess::ArrivalProcess(const ArrivalParams &params, int total_jobs)
    : params_(params),
      total_jobs_(total_jobs > 0 ? total_jobs : params.total_jobs)
{
    AIWC_ASSERT(params_.study_days > 0.0, "study must span time");
    AIWC_ASSERT(total_jobs_ > 0, "need at least one arrival");

    // Numerically integrate the modulation so base_rate makes the
    // expected arrival count equal total_jobs.
    base_rate_ = 1.0;  // unit rate while integrating modulation
    const Seconds horizon = studySeconds();
    const Seconds step = 600.0;
    double integral = 0.0;
    max_modulation_ = 0.0;
    for (Seconds t = 0.5 * step; t < horizon; t += step) {
        const double m = modulationAt(t);
        integral += m * step;
        max_modulation_ = std::max(max_modulation_, m);
    }
    base_rate_ = static_cast<double>(total_jobs_) / integral;
    // Small safety margin: the sampled max may sit between grid points.
    max_modulation_ *= 1.05;
}

double
ArrivalProcess::modulationAt(Seconds t) const
{
    const double day = t / one_day;

    // Diurnal: submissions peak in the local afternoon.
    const double diurnal =
        1.0 + params_.diurnal_amplitude *
                  std::sin(2.0 * M_PI * (day - 0.4));

    // Weekly: a weekend dip (days 5 and 6 of each week).
    const int weekday = static_cast<int>(day) % 7;
    const double weekly = (weekday >= 5) ? params_.weekend_dip : 1.0;

    // Deadline surges: load ramps up toward each deadline, then sags
    // briefly after it.
    double deadline = 1.0;
    for (const auto &d : params_.deadlines) {
        if (day <= d.day && day >= d.day - d.ramp_days) {
            const double x = (day - (d.day - d.ramp_days)) / d.ramp_days;
            deadline += d.gain * x * x;  // convex ramp to the deadline
        } else if (day > d.day && day <= d.day + 3.0) {
            deadline *= 0.85;  // post-deadline lull
        }
    }
    return std::max(diurnal * weekly * deadline, 0.01);
}

std::vector<Seconds>
ArrivalProcess::generate(Rng &rng) const
{
    // Lewis-Shedler thinning against the constant bound maxRate().
    std::vector<Seconds> arrivals;
    arrivals.reserve(static_cast<std::size_t>(total_jobs_ * 1.1));
    const double bound = maxRate();
    const Seconds horizon = studySeconds();
    Seconds t = 0.0;
    while (true) {
        t += rng.exponential(bound);
        if (t >= horizon)
            break;
        if (rng.uniform() * bound <= rateAt(t))
            arrivals.push_back(t);
    }
    return arrivals;
}

} // namespace aiwc::workload
