#include "aiwc/workload/workflow_model.hh"

#include <cmath>

#include "aiwc/base/logging.hh"

namespace aiwc::workload
{

namespace
{

/**
 * Default transitions, rows/columns ordered as the Lifecycle enum
 * (mature, exploratory, development, IDE). Tuned so the stationary
 * distribution lands within ~0.02 of the Fig. 15a mix
 * (59.5 / 18 / 19 / 3.5%):
 *  - mature work mostly continues, occasionally reopens exploration
 *    or debugging;
 *  - exploratory sweeps converge to mature runs;
 *  - development alternates with more development, sweeps, and the
 *    occasional IDE session;
 *  - IDE sessions feed development.
 */
constexpr WorkflowMatrix default_matrix = {{
    {0.76, 0.10, 0.12, 0.02},  // mature ->
    {0.50, 0.37, 0.12, 0.01},  // exploratory ->
    {0.24, 0.24, 0.47, 0.05},  // development ->
    {0.00, 0.08, 0.52, 0.40},  // IDE -> (design feeds development)
}};

} // namespace

WorkflowModel::WorkflowModel() : WorkflowModel(default_matrix)
{
}

WorkflowModel::WorkflowModel(const WorkflowMatrix &matrix)
    : matrix_(matrix)
{
    for (const auto &row : matrix_) {
        double total = 0.0;
        for (double p : row) {
            AIWC_ASSERT(p >= 0.0, "negative transition probability");
            total += p;
        }
        AIWC_ASSERT(std::abs(total - 1.0) < 1e-6,
                    "workflow matrix row does not sum to 1: ", total);
    }
}

Lifecycle
WorkflowModel::next(Lifecycle current, Rng &rng) const
{
    const auto &row = matrix_[static_cast<std::size_t>(current)];
    double u = rng.uniform();
    for (int c = 0; c < num_lifecycles; ++c) {
        u -= row[static_cast<std::size_t>(c)];
        if (u <= 0.0)
            return static_cast<Lifecycle>(c);
    }
    return static_cast<Lifecycle>(num_lifecycles - 1);
}

std::vector<Lifecycle>
WorkflowModel::session(std::size_t jobs, Rng &rng) const
{
    std::vector<Lifecycle> out;
    out.reserve(jobs);
    Lifecycle state = Lifecycle::Ide;  // projects start at design
    for (std::size_t i = 0; i < jobs; ++i) {
        out.push_back(state);
        state = next(state, rng);
    }
    return out;
}

std::array<double, num_lifecycles>
WorkflowModel::stationary(int iterations) const
{
    std::array<double, num_lifecycles> pi{};
    pi.fill(1.0 / num_lifecycles);
    for (int it = 0; it < iterations; ++it) {
        std::array<double, num_lifecycles> nxt{};
        for (int i = 0; i < num_lifecycles; ++i) {
            for (int j = 0; j < num_lifecycles; ++j) {
                nxt[static_cast<std::size_t>(j)] +=
                    pi[static_cast<std::size_t>(i)] *
                    matrix_[static_cast<std::size_t>(i)]
                           [static_cast<std::size_t>(j)];
            }
        }
        pi = nxt;
    }
    return pi;
}

} // namespace aiwc::workload
