#include "aiwc/workload/job_generator.hh"

#include <algorithm>
#include <cmath>

#include "aiwc/base/logging.hh"
#include "aiwc/dist/distributions.hh"

namespace aiwc::workload
{

namespace
{

/** Sample an index from unnormalized weights. */
template <std::size_t N>
std::size_t
sampleIndex(const std::array<double, N> &weights, Rng &rng,
            std::size_t first = 0, std::size_t last = N - 1)
{
    double total = 0.0;
    for (std::size_t i = first; i <= last; ++i)
        total += weights[i];
    AIWC_ASSERT(total > 0.0, "weight vector sums to zero");
    double u = rng.uniform() * total;
    for (std::size_t i = first; i <= last; ++i) {
        u -= weights[i];
        if (u <= 0.0)
            return i;
    }
    return last;
}

} // namespace

JobGenerator::JobGenerator(const CalibrationProfile &profile)
    : profile_(profile)
{
}

Lifecycle
JobGenerator::sampleClass(const UserProfile &user, Rng &rng) const
{
    return static_cast<Lifecycle>(sampleIndex(user.class_mix, rng));
}

Interface
JobGenerator::sampleInterface(Lifecycle c, Rng &rng) const
{
    return static_cast<Interface>(
        sampleIndex(profile_.interfacesFor(c), rng));
}

int
JobGenerator::sampleGpuCount(const UserProfile &user, Lifecycle c,
                             Rng &rng) const
{
    const int max_bucket = user.maxBucket();
    const double multi_prob = std::min(
        user.multi_gpu_prob * profile_.forClass(c).multi_gpu_prob_scale,
        1.0);
    if (max_bucket == 0 || !rng.chance(multi_prob))
        return 1;

    // Users with a larger tier actually use it: a data-parallel shop
    // with 8-GPU access runs 4-8 GPU sweeps routinely, not once in a
    // blue moon. Tier-specific size weights reproduce Fig. 13's tail
    // (2.4% of jobs above 2 GPUs, <1% at 9+).
    static constexpr GpuCountWeights medium_weights = {0, 0.55, 0.28,
                                                       0.17, 0, 0};
    static constexpr GpuCountWeights large_weights = {0, 0.50, 0.22,
                                                      0.12, 0.10, 0.06};
    const GpuCountWeights &weights =
        user.tier == GpuTier::Large
            ? large_weights
            : (user.tier == GpuTier::Medium ? medium_weights
                                            : profile_.gpuCountsFor(c));
    double total = 0.0;
    for (int i = 1; i <= max_bucket; ++i)
        total += weights[static_cast<std::size_t>(i)];
    if (total <= 0.0)
        return 1;  // class never goes multi (within this tier)
    const std::size_t bucket =
        sampleIndex(weights, rng, 1, static_cast<std::size_t>(max_bucket));
    return gpu_count_buckets[bucket];
}

double
JobGenerator::survivalProbability(Lifecycle c, Rng &rng, int trials,
                                  double runtime_scale) const
{
    if (c == Lifecycle::Ide)
        return 1.0;  // IDE sessions always outlive 30 s
    UserProfile user;
    user.runtime_scale = runtime_scale;
    int survived = 0;
    for (int i = 0; i < trials; ++i)
        if (sampleDuration(user, c, 1, rng) >= 30.0)
            ++survived;
    return std::max(static_cast<double>(survived) / trials, 0.05);
}

Seconds
JobGenerator::sampleDuration(const UserProfile &user, Lifecycle c,
                             int gpus, Rng &rng) const
{
    const ClassParams &cp = profile_.forClass(c);
    const RuntimeParams &rt = cp.runtime;

    if (rng.chance(rt.abort_prob)) {
        // Near-instant failure (import error, bad config): these are
        // the <30 s jobs the paper filters out of GPU analysis.
        const dist::LogNormal abort_duration(rt.abort_median_seconds,
                                             rt.abort_sigma);
        return std::clamp(abort_duration.sample(rng), 1.0, 120.0);
    }

    const double median_s =
        rt.median_minutes * 60.0 * user.runtime_scale;
    const dist::LogNormal body(median_s, rt.sigma);
    double duration = body.sample(rng);
    // Larger jobs train bigger configurations a bit longer; the
    // exponent is small enough that the paper's "no significant
    // difference" observation still holds for the dominant 2-GPU jobs.
    duration *= std::pow(static_cast<double>(gpus),
                         cp.multi_gpu_runtime_exponent);
    const double cap = 0.94 * profile_.max_walltime_hours * one_hour;
    return std::clamp(duration, 1.0, cap);
}

void
JobGenerator::fillProfile(telemetry::JobProfile &out,
                          const UserProfile &user, Lifecycle c,
                          Interface iface, int gpus, Rng &rng) const
{
    const ClassParams &cp = profile_.forClass(c);
    const UtilizationParams &up = cp.util;
    const double iface_scale =
        profile_.interface_util_scale[static_cast<std::size_t>(iface)];
    const double scale = user.util_scale * iface_scale;

    out.num_gpus = gpus;
    out.idle_gpus = 0;
    if (gpus > 1 && rng.chance(cp.idle_gpu_prob)) {
        // Half or more of the GPUs sit idle (misconfigured ranks,
        // Sec. V Fig. 14a): idle count in [ceil(g/2), g-1].
        const int min_idle = (gpus + 1) / 2;
        const int span = gpus - min_idle;  // choices: min_idle..gpus-1
        out.idle_gpus =
            min_idle + static_cast<int>(rng.below(
                           static_cast<std::uint64_t>(std::max(span, 1))));
        out.idle_gpus = std::min(out.idle_gpus, gpus - 1);
    }

    // Mean utilizations: zero-inflated Beta for SM, ratio-coupled
    // memory bandwidth, independent Beta for memory size — plus a
    // memory-intensive subpopulation (Sec. III: "a large portion of
    // the jobs have close to zero GPU SM utilization [but high]
    // memory utilization"; also the 4% of jobs above 50% memBW).
    bool zero_util = false;
    if (rng.chance(user.membw_intensive_prob)) {
        out.sm_mean = rng.uniform(0.02, 0.15);
        out.membw_mean = rng.uniform(0.35, 0.9);
    } else if (rng.chance(up.zero_prob)) {
        zero_util = true;
        out.sm_mean = rng.uniform(0.0, 0.01);
        out.membw_mean = out.sm_mean * 0.5;
    } else {
        const dist::Beta sm = dist::Beta::fromMean(
            std::clamp(up.sm_mean, 0.01, 0.95), up.sm_kappa);
        out.sm_mean = std::clamp(sm.sample(rng) * scale, 0.0, 1.0);
        const dist::Beta ratio = dist::Beta::fromMean(
            std::clamp(up.membw_ratio_mean, 0.01, 0.95),
            up.membw_ratio_kappa);
        out.membw_mean = std::clamp(out.sm_mean * ratio.sample(rng), 0.0,
                                    1.0);
    }
    if (rng.chance(user.large_model_prob)) {
        // Large-model jobs: the working set nearly fills the 32 GB
        // V100 (the upper mode behind "15% of jobs above 50% memory
        // size", Fig. 4a).
        out.memsize_mean = rng.uniform(0.45, 0.9);
    } else {
        const dist::Beta memsize = dist::Beta::fromMean(
            std::clamp(up.memsize_mean, 0.01, 0.95), up.memsize_kappa);
        out.memsize_mean = memsize.sample(rng);
    }

    // Phase process.
    const PhaseParams &pp = cp.phase;
    const dist::Beta af = dist::Beta::fromMean(
        std::clamp(pp.active_fraction_mean, 0.01, 0.99),
        pp.active_fraction_kappa);
    out.active_fraction = af.sample(rng);
    if (zero_util) {
        // A job that never exercises the GPU is also idle-heavy; its
        // "active" phases are brief host-driven touches.
        out.active_fraction *= rng.uniform(0.05, 0.3);
    }
    out.active_len_median_s =
        pp.active_len_median_s * std::exp(0.4 * rng.gaussian());
    out.active_len_sigma = pp.active_len_sigma * rng.uniform(0.8, 1.2);
    out.idle_len_sigma = pp.idle_len_sigma * rng.uniform(0.8, 1.2);
    out.phase_jitter_sigma = rng.uniform(0.12, 0.20);
    out.sample_noise_rel = rng.uniform(0.05, 0.12);
    out.memsize_noise_rel = rng.uniform(0.05, 0.11);

    // PCIe means: uniform across jobs (the linear CDF of Fig. 4b).
    out.pcie_tx_mean = rng.uniform(profile_.pcie_mean_lo,
                                   profile_.pcie_mean_hi);
    out.pcie_rx_mean = rng.uniform(profile_.pcie_mean_lo,
                                   profile_.pcie_mean_hi);

    // Saturation flags, with the Rx-conditioned structure of Fig. 8b.
    const SaturationParams &sat = profile_.saturation;
    out.sat_rx = rng.chance(sat.rx);
    out.sat_sm = rng.chance(out.sat_rx ? sat.sm_given_rx
                                       : sat.sm_given_no_rx);
    out.sat_tx = rng.chance(out.sat_rx ? sat.tx_given_rx
                                       : sat.tx_given_no_rx);
    out.sat_membw = rng.chance(sat.membw);
    out.sat_memsize = rng.chance(sat.memsize);

    out.power_efficiency = std::clamp(
        1.0 + profile_.power.efficiency_noise * rng.gaussian(), 0.6, 1.4);
    out.telemetry_seed = rng();
}

GeneratedJob
JobGenerator::gpuJob(const UserProfile &user, Seconds submit, JobId id,
                     Rng &rng, std::optional<Lifecycle> force_class) const
{
    GeneratedJob job;
    sched::JobRequest &req = job.request;
    req.id = id;
    req.user = user.id;
    req.submit_time = submit;
    req.lifecycle = force_class ? *force_class : sampleClass(user, rng);
    req.interface = sampleInterface(req.lifecycle, rng);
    req.gpus = sampleGpuCount(user, req.lifecycle, rng);

    if (req.lifecycle == Lifecycle::Ide) {
        // IDE sessions hold the GPU until their 12 h / 24 h limit
        // (Sec. VI) — the generator pins the duration past it.
        const double hours = rng.chance(profile_.ide_long_timeout_prob)
                                 ? profile_.ide_long_timeout_hours
                                 : profile_.ide_short_timeout_hours;
        req.walltime_limit = hours * one_hour;
        req.duration = req.walltime_limit * 1.01;
        req.natural_end = TerminalState::TimedOut;
    } else {
        req.duration = sampleDuration(user, req.lifecycle, req.gpus, rng);
        const double factor = rng.uniform(profile_.walltime_factor_lo,
                                          profile_.walltime_factor_hi);
        req.walltime_limit =
            std::min(std::max(req.duration * factor, 10.0 * one_minute),
                     profile_.max_walltime_hours * one_hour);
        switch (req.lifecycle) {
          case Lifecycle::Mature:
            req.natural_end = TerminalState::Completed;
            break;
          case Lifecycle::Exploratory:
            // Hyper-parameter probes the user kills once the loss
            // curve disappoints (Sec. VI).
            req.natural_end = TerminalState::Cancelled;
            break;
          case Lifecycle::Development:
            req.natural_end = TerminalState::Failed;
            break;
          case Lifecycle::Ide:
            break;  // handled above
        }
        if (rng.chance(profile_.node_failure_prob)) {
            req.natural_end = TerminalState::NodeFailure;
            req.duration *= rng.uniform(0.05, 0.9);
            req.duration = std::max(req.duration, 1.0);
        }
    }

    // GPU jobs request modest CPU resources (Sec. III: this is what
    // lets them co-locate and dodge the queue).
    req.cpu_slots = req.gpus * (4 + static_cast<int>(rng.below(13)));
    req.ram_gb = req.gpus * rng.uniform(8.0, 96.0);

    fillProfile(job.profile, user, req.lifecycle, req.interface, req.gpus,
                rng);
    return job;
}

sched::JobRequest
JobGenerator::cpuJob(const UserProfile &user, Seconds submit, JobId id,
                     Rng &rng) const
{
    const CpuJobParams &cj = profile_.cpu_jobs;
    sched::JobRequest req;
    req.id = id;
    req.user = user.id;
    req.submit_time = submit;
    req.lifecycle = Lifecycle::Mature;  // CPU jobs are outside Fig. 15
    req.interface = rng.chance(0.8) ? Interface::Batch : Interface::Other;
    req.gpus = 0;

    const dist::LogNormal body(cj.runtime_median_minutes * 60.0,
                               cj.runtime_sigma);
    req.duration = std::clamp(body.sample(rng), 1.0,
                              0.94 * profile_.max_walltime_hours * one_hour);
    req.walltime_limit =
        std::min(std::max(req.duration * rng.uniform(2.0, 10.0),
                          10.0 * one_minute),
                 profile_.max_walltime_hours * one_hour);
    req.natural_end = TerminalState::Completed;

    // Whole nodes: all cores, nearly all memory (Sec. III).
    static constexpr std::array<int, 6> node_counts = {1, 2, 4, 8, 16, 32};
    const std::size_t bucket = sampleIndex(cj.node_count_weights, rng);
    const int nodes = node_counts[bucket];
    req.cpu_slots = nodes * 80;  // 2 sockets x 20 cores x 2 HT
    req.ram_gb = nodes * rng.uniform(300.0, 384.0);
    return req;
}

} // namespace aiwc::workload
