#include "aiwc/sim/event_queue.hh"

#include <cmath>

#include "aiwc/base/check.hh"

namespace aiwc::sim
{

EventId
EventQueue::schedule(Seconds when, std::function<void()> callback)
{
    AIWC_CHECK(callback, "scheduling a null callback");
    // A NaN timestamp poisons the heap ordering silently (every
    // comparison is false), so reject it loudly here.
    AIWC_CHECK(std::isfinite(when),
               "scheduling at a non-finite time: ", when);
    const EventId id = next_id_++;
    heap_.push(Entry{when, next_seq_++, id});
    callbacks_.emplace(id, std::move(callback));
    ++live_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    const auto it = callbacks_.find(id);
    if (it == callbacks_.end())
        return false;
    callbacks_.erase(it);
    cancelled_.insert(id);
    --live_;
    return true;
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty()) {
        const auto it = cancelled_.find(heap_.top().id);
        if (it == cancelled_.end())
            return;
        cancelled_.erase(it);
        heap_.pop();
    }
}

bool
EventQueue::empty() const
{
    skipDead();
    return heap_.empty();
}

Seconds
EventQueue::nextTime() const
{
    skipDead();
    AIWC_CHECK(!heap_.empty(), "nextTime() on an empty queue");
    return heap_.top().when;
}

Seconds
EventQueue::popAndRun()
{
    skipDead();
    AIWC_CHECK(!heap_.empty(), "popAndRun() on an empty queue");
    const Entry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.id);
    AIWC_CHECK(it != callbacks_.end(), "live event ", top.id,
               " without a callback");
    auto cb = std::move(it->second);
    callbacks_.erase(it);
    --live_;
    cb();
    return top.when;
}

} // namespace aiwc::sim
