#include "aiwc/sim/cluster_factory.hh"

#include "aiwc/base/logging.hh"
#include "aiwc/common/table.hh"

namespace aiwc::sim
{

namespace
{

/**
 * The machine-class catalog. Row 0 is the Table-I Supercloud node;
 * row 1 is the cheaper "economy" exploration tier (same chassis,
 * slower 16 GB GPUs) that economyGpuSpec() has always described.
 */
constexpr MachineSpec machine_spec_table[] = {
    // name, nodes, sockets, cores/socket, HT, RAM GB, GPUs,
    //     GPU model, GPU GB, TDP W, idle W, rel speed,
    //     SSD TB, HDD TB, shared SSD TB
    {"Supercloud", 224, 2, 20, 2, 384.0, 2,
     "Nvidia Volta V100", 32.0, 300.0, 25.0, 1.0,
     1.0, 3.8, 873.0},
    {"EconomySupercloud", 224, 2, 20, 2, 384.0, 2,
     "EconomyTier", 16.0, 160.0, 15.0, 0.5,
     1.0, 3.8, 873.0},
};

} // namespace

const MachineSpec *
machineSpecTable()
{
    return machine_spec_table;
}

std::size_t
machineSpecCount()
{
    return sizeof(machine_spec_table) / sizeof(machine_spec_table[0]);
}

ClusterSpec
clusterSpecFrom(const MachineSpec &machine)
{
    ClusterSpec spec;
    spec.name = machine.name;
    spec.nodes = machine.nodes;
    spec.node.sockets = machine.sockets;
    spec.node.cores_per_socket = machine.cores_per_socket;
    spec.node.hyperthreads_per_core = machine.hyperthreads_per_core;
    spec.node.ram_gb = machine.ram_gb;
    spec.node.gpus = machine.gpus;
    spec.node.gpu.model = machine.gpu_model;
    spec.node.gpu.memory_gb = machine.gpu_memory_gb;
    spec.node.gpu.tdp_watts = machine.gpu_tdp_watts;
    spec.node.gpu.idle_watts = machine.gpu_idle_watts;
    spec.node.gpu.relative_speed = machine.gpu_relative_speed;
    spec.node.local_ssd_tb = machine.local_ssd_tb;
    spec.node.local_hdd_tb = machine.local_hdd_tb;
    spec.shared_ssd_tb = machine.shared_ssd_tb;
    return spec;
}

ClusterSpec
supercloudSpec()
{
    return clusterSpecFrom(machine_spec_table[0]);
}

ClusterSpec
miniSupercloudSpec(int nodes)
{
    AIWC_ASSERT(nodes >= 1, "mini cluster needs at least one node");
    ClusterSpec spec = supercloudSpec();
    spec.name = "MiniSupercloud";
    spec.nodes = nodes;
    return spec;
}

GpuSpec
economyGpuSpec(double relative_speed)
{
    AIWC_ASSERT(relative_speed > 0.0 && relative_speed <= 1.0,
                "economy tier speed must be in (0, 1]");
    GpuSpec gpu;
    gpu.model = "EconomyTier";
    gpu.memory_gb = 16.0;
    gpu.tdp_watts = 160.0;
    gpu.idle_watts = 15.0;
    gpu.relative_speed = relative_speed;
    return gpu;
}

void
printSpec(const ClusterSpec &spec, std::ostream &os)
{
    TextTable table({"Specification", "Value"});
    table.addRow({"System", spec.name});
    table.addRow({"Number of Nodes", formatNumber(spec.nodes, 0)});
    table.addRow({"Number of CPU Cores",
                  formatNumber(spec.totalCpuCores(), 0)});
    table.addRow({"CPU sockets x cores x HT",
                  formatNumber(spec.node.sockets, 0) + " x " +
                      formatNumber(spec.node.cores_per_socket, 0) + " x " +
                      formatNumber(spec.node.hyperthreads_per_core, 0)});
    table.addRow({"Node RAM", formatNumber(spec.node.ram_gb, 0) + " GB"});
    table.addRow({"Number of GPUs", formatNumber(spec.totalGpus(), 0)});
    table.addRow({"GPUs per Node", formatNumber(spec.node.gpus, 0)});
    table.addRow({"GPU Type", spec.node.gpu.model});
    table.addRow({"GPU RAM",
                  formatNumber(spec.node.gpu.memory_gb, 0) + " GB"});
    table.addRow({"GPU TDP",
                  formatNumber(spec.node.gpu.tdp_watts, 0) + " W"});
    table.addRow({"Local Storage",
                  formatNumber(spec.node.local_ssd_tb, 1) + " TB SSD & " +
                      formatNumber(spec.node.local_hdd_tb, 1) + " TB HDD"});
    table.addRow({"Shared Storage",
                  formatNumber(spec.shared_ssd_tb, 0) + " TB SSD"});
    table.addRow({"Interconnect", spec.interconnect});
    table.addRow({"Network", spec.network});
    table.print(os);
}

} // namespace aiwc::sim
