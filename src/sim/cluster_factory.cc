#include "aiwc/sim/cluster_factory.hh"

#include "aiwc/base/logging.hh"
#include "aiwc/common/table.hh"

namespace aiwc::sim
{

ClusterSpec
supercloudSpec()
{
    ClusterSpec spec;
    spec.name = "Supercloud";
    spec.nodes = 224;
    spec.node.sockets = 2;
    spec.node.cores_per_socket = 20;
    spec.node.hyperthreads_per_core = 2;
    spec.node.ram_gb = 384.0;
    spec.node.gpus = 2;
    spec.node.gpu.model = "Nvidia Volta V100";
    spec.node.gpu.memory_gb = 32.0;
    spec.node.gpu.tdp_watts = 300.0;
    spec.node.gpu.idle_watts = 25.0;
    spec.node.gpu.relative_speed = 1.0;
    spec.node.local_ssd_tb = 1.0;
    spec.node.local_hdd_tb = 3.8;
    spec.shared_ssd_tb = 873.0;
    return spec;
}

ClusterSpec
miniSupercloudSpec(int nodes)
{
    AIWC_ASSERT(nodes >= 1, "mini cluster needs at least one node");
    ClusterSpec spec = supercloudSpec();
    spec.name = "MiniSupercloud";
    spec.nodes = nodes;
    return spec;
}

GpuSpec
economyGpuSpec(double relative_speed)
{
    AIWC_ASSERT(relative_speed > 0.0 && relative_speed <= 1.0,
                "economy tier speed must be in (0, 1]");
    GpuSpec gpu;
    gpu.model = "EconomyTier";
    gpu.memory_gb = 16.0;
    gpu.tdp_watts = 160.0;
    gpu.idle_watts = 15.0;
    gpu.relative_speed = relative_speed;
    return gpu;
}

void
printSpec(const ClusterSpec &spec, std::ostream &os)
{
    TextTable table({"Specification", "Value"});
    table.addRow({"System", spec.name});
    table.addRow({"Number of Nodes", formatNumber(spec.nodes, 0)});
    table.addRow({"Number of CPU Cores",
                  formatNumber(spec.totalCpuCores(), 0)});
    table.addRow({"CPU sockets x cores x HT",
                  formatNumber(spec.node.sockets, 0) + " x " +
                      formatNumber(spec.node.cores_per_socket, 0) + " x " +
                      formatNumber(spec.node.hyperthreads_per_core, 0)});
    table.addRow({"Node RAM", formatNumber(spec.node.ram_gb, 0) + " GB"});
    table.addRow({"Number of GPUs", formatNumber(spec.totalGpus(), 0)});
    table.addRow({"GPUs per Node", formatNumber(spec.node.gpus, 0)});
    table.addRow({"GPU Type", spec.node.gpu.model});
    table.addRow({"GPU RAM",
                  formatNumber(spec.node.gpu.memory_gb, 0) + " GB"});
    table.addRow({"GPU TDP",
                  formatNumber(spec.node.gpu.tdp_watts, 0) + " W"});
    table.addRow({"Local Storage",
                  formatNumber(spec.node.local_ssd_tb, 1) + " TB SSD & " +
                      formatNumber(spec.node.local_hdd_tb, 1) + " TB HDD"});
    table.addRow({"Shared Storage",
                  formatNumber(spec.shared_ssd_tb, 0) + " TB SSD"});
    table.addRow({"Interconnect", spec.interconnect});
    table.addRow({"Network", spec.network});
    table.print(os);
}

} // namespace aiwc::sim
