#include "aiwc/sim/simulation.hh"

#include "aiwc/common/logging.hh"

namespace aiwc::sim
{

EventId
Simulation::at(Seconds when, std::function<void()> callback)
{
    AIWC_ASSERT(when >= now_, "scheduling into the past: ", when,
                " < ", now_);
    return events_.schedule(when, std::move(callback));
}

EventId
Simulation::after(Seconds delay, std::function<void()> callback)
{
    AIWC_ASSERT(delay >= 0.0, "negative delay: ", delay);
    return events_.schedule(now_ + delay, std::move(callback));
}

std::size_t
Simulation::run()
{
    std::size_t fired = 0;
    while (!events_.empty()) {
        // Advance the clock BEFORE dispatching, so the callback (and
        // anything it schedules) sees the event's own time as now().
        now_ = events_.nextTime();
        events_.popAndRun();
        ++fired;
    }
    return fired;
}

std::size_t
Simulation::runUntil(Seconds horizon)
{
    std::size_t fired = 0;
    while (!events_.empty() && events_.nextTime() <= horizon) {
        now_ = events_.nextTime();
        events_.popAndRun();
        ++fired;
    }
    if (now_ < horizon)
        now_ = horizon;
    return fired;
}

} // namespace aiwc::sim
