#include "aiwc/sim/simulation.hh"

#include <cmath>

#include "aiwc/base/check.hh"
#include "aiwc/obs/trace.hh"

namespace aiwc::sim
{

namespace
{

/** Cached registry handles for the event-dispatch hot path. */
struct SimMetrics
{
    obs::Counter &events_fired;
    obs::Histogram &event_ns;
    obs::Histogram &queue_depth;

    static SimMetrics &
    get()
    {
        static SimMetrics metrics{
            obs::MetricsRegistry::global().counter("aiwc.sim.events_fired"),
            obs::MetricsRegistry::global().histogram("aiwc.sim.event_ns"),
            obs::MetricsRegistry::global().histogram("aiwc.sim.queue_depth"),
        };
        return metrics;
    }
};

} // namespace

EventId
Simulation::at(Seconds when, std::function<void()> callback)
{
    AIWC_CHECK(std::isfinite(when),
               "scheduling at a non-finite time: ", when);
    AIWC_CHECK_GE(when, now_, "scheduling into the past");
    return events_.schedule(when, std::move(callback));
}

EventId
Simulation::after(Seconds delay, std::function<void()> callback)
{
    AIWC_CHECK(std::isfinite(delay), "non-finite delay: ", delay);
    AIWC_CHECK_GE(delay, 0.0, "negative delay");
    return events_.schedule(now_ + delay, std::move(callback));
}

std::size_t
Simulation::run()
{
    obs::TraceSpan span("sim.run");
    SimMetrics &metrics = SimMetrics::get();
    std::size_t fired = 0;
    while (!events_.empty()) {
        // Advance the clock BEFORE dispatching, so the callback (and
        // anything it schedules) sees the event's own time as now().
        const Seconds next = events_.nextTime();
        AIWC_CHECK_GE(next, now_, "event clock moved backwards");
        now_ = next;
        metrics.queue_depth.observe(events_.size());
        {
            obs::ScopedTimer timer(metrics.event_ns);
            events_.popAndRun();
        }
        metrics.events_fired.add(1);
        ++fired;
    }
    return fired;
}

std::size_t
Simulation::runUntil(Seconds horizon)
{
    AIWC_CHECK(std::isfinite(horizon), "non-finite horizon: ", horizon);
    obs::TraceSpan span("sim.runUntil");
    SimMetrics &metrics = SimMetrics::get();
    std::size_t fired = 0;
    while (!events_.empty() && events_.nextTime() <= horizon) {
        const Seconds next = events_.nextTime();
        AIWC_CHECK_GE(next, now_, "event clock moved backwards");
        now_ = next;
        metrics.queue_depth.observe(events_.size());
        {
            obs::ScopedTimer timer(metrics.event_ns);
            events_.popAndRun();
        }
        metrics.events_fired.add(1);
        ++fired;
    }
    if (now_ < horizon)
        now_ = horizon;
    return fired;
}

} // namespace aiwc::sim
