#include "aiwc/sim/resources.hh"

#include <algorithm>

#include "aiwc/base/check.hh"

namespace aiwc::sim
{

namespace
{

/** Tolerance for RAM accounting residue (see Node::fitsCpu). */
constexpr double ram_epsilon = 1e-6;

} // namespace

void
Gpu::assign(JobId job)
{
    // Check before mutating: a throwing fail handler (tests) must
    // observe unchanged state after a rejected misuse.
    AIWC_CHECK(!busy(), "GPU ", id_, " is already assigned to job ", job_,
               "; double-assign for job ", job);
    AIWC_CHECK_NE(job, invalid_id, "assigning GPU ", id_,
                  " to an invalid job id");
    job_ = job;
}

void
Gpu::release()
{
    AIWC_CHECK(busy(), "double-release of idle GPU ", id_);
    job_ = invalid_id;
}

void
Gpu::auditInvariants() const
{
    AIWC_CHECK(spec_ != nullptr, "GPU ", id_, " lost its spec");
    AIWC_CHECK_NE(id_, invalid_id, "GPU with an invalid id");
    AIWC_CHECK_NE(node_, invalid_id, "GPU ", id_, " with an invalid node");
}

Node::Node(NodeId id, const NodeSpec &spec, GpuId first_gpu_id)
    : id_(id), spec_(&spec), free_cpu_slots_(spec.cpuSlots()),
      free_ram_gb_(spec.ram_gb)
{
    AIWC_CHECK_GT(spec.cpuSlots(), 0, "node ", id, " has no CPU slots");
    AIWC_CHECK_GE(spec.gpus, 0, "node ", id, " has negative GPUs");
    gpus_.reserve(static_cast<std::size_t>(spec.gpus));
    for (int g = 0; g < spec.gpus; ++g)
        gpus_.emplace_back(first_gpu_id + static_cast<GpuId>(g), id,
                           spec.gpu);
}

int
Node::freeGpus() const
{
    int n = 0;
    for (const auto &g : gpus_)
        if (!g.busy())
            ++n;
    return n;
}

bool
Node::fitsCpu(int cpu_slots, double ram_gb) const
{
    // Epsilon absorbs floating-point residue from repeated RAM
    // allocate/release cycles; without it a whole-node request of
    // exactly the node's RAM can be rejected forever once free RAM
    // drifts to 383.999... GB.
    return cpu_slots <= free_cpu_slots_ &&
           ram_gb <= free_ram_gb_ + ram_epsilon;
}

void
Node::allocateCpu(int cpu_slots, double ram_gb)
{
    AIWC_CHECK_GE(cpu_slots, 0, "negative slot request on node ", id_);
    AIWC_CHECK_GE(ram_gb, 0.0, "negative RAM request on node ", id_);
    AIWC_CHECK(fitsCpu(cpu_slots, ram_gb),
               "over-allocating node ", id_, ": ", cpu_slots, " slots / ",
               ram_gb, " GB requested, ", free_cpu_slots_, " / ",
               free_ram_gb_, " free");
    free_cpu_slots_ -= cpu_slots;
    free_ram_gb_ = std::max(free_ram_gb_ - ram_gb, 0.0);
    ++resident_jobs_;
}

void
Node::releaseCpu(int cpu_slots, double ram_gb)
{
    AIWC_CHECK_GE(cpu_slots, 0, "negative slot release on node ", id_);
    AIWC_CHECK_GE(ram_gb, 0.0, "negative RAM release on node ", id_);
    AIWC_CHECK_GT(resident_jobs_, 0,
                  "releasing CPU on node ", id_, " with no resident jobs");
    AIWC_CHECK_LE(free_cpu_slots_ + cpu_slots, spec_->cpuSlots(),
                  "CPU slot over-release on node ", id_, ": ", cpu_slots,
                  " returned with ", free_cpu_slots_, " of ",
                  spec_->cpuSlots(), " already free");
    AIWC_CHECK_LE(free_ram_gb_ + ram_gb, spec_->ram_gb + ram_epsilon,
                  "RAM over-release on node ", id_, ": ", ram_gb,
                  " GB returned with ", free_ram_gb_, " GB already free");
    free_cpu_slots_ += cpu_slots;
    free_ram_gb_ += ram_gb;
    --resident_jobs_;
    // Snap an empty node back to its exact capacity so accumulated
    // rounding never leaks into future whole-node placements.
    if (resident_jobs_ == 0) {
        free_cpu_slots_ = spec_->cpuSlots();
        free_ram_gb_ = spec_->ram_gb;
    }
}

std::vector<GpuId>
Node::allocateGpus(JobId job, int count)
{
    AIWC_CHECK_GE(count, 0, "negative GPU request on node ", id_);
    AIWC_CHECK_LE(count, freeGpus(), "not enough free GPUs on node ", id_,
                  " for job ", job);
    std::vector<GpuId> out;
    out.reserve(static_cast<std::size_t>(count));
    for (auto &g : gpus_) {
        if (static_cast<int>(out.size()) == count)
            break;
        if (!g.busy()) {
            g.assign(job);
            out.push_back(g.id());
        }
    }
    return out;
}

void
Node::releaseGpu(GpuId gpu)
{
    for (auto &g : gpus_) {
        if (g.id() == gpu) {
            g.release();
            return;
        }
    }
    AIWC_CHECK(false, "GPU ", gpu, " does not live on node ", id_);
}

void
Node::auditInvariants() const
{
    AIWC_CHECK_GE(free_cpu_slots_, 0, "negative free slots on node ", id_);
    AIWC_CHECK_LE(free_cpu_slots_, spec_->cpuSlots(),
                  "leaked CPU slots on node ", id_);
    AIWC_CHECK_GE(free_ram_gb_, 0.0, "negative free RAM on node ", id_);
    AIWC_CHECK_LE(free_ram_gb_, spec_->ram_gb + ram_epsilon,
                  "leaked RAM on node ", id_);
    AIWC_CHECK_GE(resident_jobs_, 0, "job count underflow on node ", id_);
    AIWC_CHECK_EQ(gpus_.size(), static_cast<std::size_t>(spec_->gpus),
                  "GPU count drift on node ", id_);
    for (const auto &g : gpus_) {
        g.auditInvariants();
        AIWC_CHECK_EQ(g.node(), id_, "GPU ", g.id(),
                      " claims a foreign node");
        if (g.busy())
            AIWC_CHECK_NE(g.job(), invalid_id,
                          "busy GPU ", g.id(), " with no owner");
    }
    if (resident_jobs_ == 0) {
        // Every GPU job also holds CPU slots here (commit order), so an
        // empty node must be fully idle and snapped to rated capacity.
        AIWC_CHECK_EQ(free_cpu_slots_, spec_->cpuSlots(),
                      "empty node ", id_, " not at full CPU capacity");
        AIWC_CHECK_EQ(freeGpus(), static_cast<int>(gpus_.size()),
                      "empty node ", id_, " holds busy GPUs");
    }
}

Cluster::Cluster(const ClusterSpec &spec) : spec_(spec)
{
    AIWC_CHECK_GT(spec.nodes, 0, "cluster needs at least one node");
    nodes_.reserve(static_cast<std::size_t>(spec.nodes));
    GpuId next_gpu = 0;
    for (int n = 0; n < spec.nodes; ++n) {
        nodes_.emplace_back(static_cast<NodeId>(n), spec_.node, next_gpu);
        next_gpu += static_cast<GpuId>(spec.node.gpus);
    }
}

Node &
Cluster::node(NodeId id)
{
    AIWC_CHECK_LT(id, nodes_.size(), "node id out of range");
    return nodes_[id];
}

const Node &
Cluster::node(NodeId id) const
{
    AIWC_CHECK_LT(id, nodes_.size(), "node id out of range");
    return nodes_[id];
}

int
Cluster::freeGpus() const
{
    int n = 0;
    for (const auto &node : nodes_)
        n += node.freeGpus();
    return n;
}

int
Cluster::freeCpuSlots() const
{
    int n = 0;
    for (const auto &node : nodes_)
        n += node.freeCpuSlots();
    return n;
}

NodeId
Cluster::nodeOfGpu(GpuId gpu) const
{
    const auto per_node = static_cast<GpuId>(spec_.node.gpus);
    AIWC_CHECK_GT(per_node, 0u, "cluster nodes carry no GPUs");
    const auto node = gpu / per_node;
    AIWC_CHECK_LT(node, nodes_.size(), "GPU id out of range: ", gpu);
    return node;
}

const Gpu &
Cluster::gpu(GpuId id) const
{
    const Node &owner = nodes_[nodeOfGpu(id)];
    for (const auto &g : owner.gpus())
        if (g.id() == id)
            return g;
    AIWC_CHECK(false, "GPU ", id, " missing from its mapped node ",
               owner.id());
    // Unreachable: the AIWC_CHECK above never returns; this only silences
    // the compiler's missing-return diagnostic.
    // aiwc-lint: allow(contract-abort) -- unreachable missing-return stub
    std::abort();
}

void
Cluster::auditInvariants() const
{
    GpuId next_gpu = 0;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        const Node &node = nodes_[n];
        node.auditInvariants();
        AIWC_CHECK_EQ(node.id(), static_cast<NodeId>(n),
                      "node id drift at index ", n);
        for (const auto &g : node.gpus()) {
            AIWC_CHECK_EQ(g.id(), next_gpu,
                          "non-sequential GPU id on node ", node.id());
            AIWC_CHECK_EQ(nodeOfGpu(g.id()), node.id(),
                          "GPU ", g.id(), " maps to the wrong node");
            ++next_gpu;
        }
    }
    AIWC_CHECK_LE(freeGpus(), spec_.totalGpus(),
                  "more free GPUs than the cluster owns");
    AIWC_CHECK_LE(freeCpuSlots(), spec_.nodes * spec_.node.cpuSlots(),
                  "more free CPU slots than the cluster owns");
}

} // namespace aiwc::sim
