#include "aiwc/sim/resources.hh"

#include <algorithm>

#include "aiwc/common/logging.hh"

namespace aiwc::sim
{

void
Gpu::assign(JobId job)
{
    AIWC_ASSERT(!busy(), "GPU ", id_, " is already assigned to job ", job_);
    AIWC_ASSERT(job != invalid_id, "assigning an invalid job id");
    job_ = job;
}

void
Gpu::release()
{
    AIWC_ASSERT(busy(), "releasing an idle GPU ", id_);
    job_ = invalid_id;
}

Node::Node(NodeId id, const NodeSpec &spec, GpuId first_gpu_id)
    : id_(id), spec_(&spec), free_cpu_slots_(spec.cpuSlots()),
      free_ram_gb_(spec.ram_gb)
{
    gpus_.reserve(static_cast<std::size_t>(spec.gpus));
    for (int g = 0; g < spec.gpus; ++g)
        gpus_.emplace_back(first_gpu_id + static_cast<GpuId>(g), id,
                           spec.gpu);
}

int
Node::freeGpus() const
{
    int n = 0;
    for (const auto &g : gpus_)
        if (!g.busy())
            ++n;
    return n;
}

bool
Node::fitsCpu(int cpu_slots, double ram_gb) const
{
    // Epsilon absorbs floating-point residue from repeated RAM
    // allocate/release cycles; without it a whole-node request of
    // exactly the node's RAM can be rejected forever once free RAM
    // drifts to 383.999... GB.
    constexpr double ram_epsilon = 1e-6;
    return cpu_slots <= free_cpu_slots_ &&
           ram_gb <= free_ram_gb_ + ram_epsilon;
}

void
Node::allocateCpu(int cpu_slots, double ram_gb)
{
    AIWC_ASSERT(fitsCpu(cpu_slots, ram_gb),
                "over-allocating node ", id_, ": ", cpu_slots, " slots / ",
                ram_gb, " GB requested, ", free_cpu_slots_, " / ",
                free_ram_gb_, " free");
    free_cpu_slots_ -= cpu_slots;
    free_ram_gb_ = std::max(free_ram_gb_ - ram_gb, 0.0);
    ++resident_jobs_;
}

void
Node::releaseCpu(int cpu_slots, double ram_gb)
{
    free_cpu_slots_ += cpu_slots;
    free_ram_gb_ += ram_gb;
    --resident_jobs_;
    AIWC_ASSERT(free_cpu_slots_ <= spec_->cpuSlots(),
                "CPU slot double-release on node ", id_);
    AIWC_ASSERT(free_ram_gb_ <= spec_->ram_gb + 1e-6,
                "RAM double-release on node ", id_);
    AIWC_ASSERT(resident_jobs_ >= 0, "job count underflow on node ", id_);
    // Snap an empty node back to its exact capacity so accumulated
    // rounding never leaks into future whole-node placements.
    if (resident_jobs_ == 0) {
        free_cpu_slots_ = spec_->cpuSlots();
        free_ram_gb_ = spec_->ram_gb;
    }
}

std::vector<GpuId>
Node::allocateGpus(JobId job, int count)
{
    AIWC_ASSERT(count <= freeGpus(), "not enough free GPUs on node ", id_);
    std::vector<GpuId> out;
    out.reserve(static_cast<std::size_t>(count));
    for (auto &g : gpus_) {
        if (static_cast<int>(out.size()) == count)
            break;
        if (!g.busy()) {
            g.assign(job);
            out.push_back(g.id());
        }
    }
    return out;
}

void
Node::releaseGpu(GpuId gpu)
{
    for (auto &g : gpus_) {
        if (g.id() == gpu) {
            g.release();
            return;
        }
    }
    panic("GPU ", gpu, " does not live on node ", id_);
}

Cluster::Cluster(const ClusterSpec &spec) : spec_(spec)
{
    AIWC_ASSERT(spec.nodes > 0, "cluster needs at least one node");
    nodes_.reserve(static_cast<std::size_t>(spec.nodes));
    GpuId next_gpu = 0;
    for (int n = 0; n < spec.nodes; ++n) {
        nodes_.emplace_back(static_cast<NodeId>(n), spec_.node, next_gpu);
        next_gpu += static_cast<GpuId>(spec.node.gpus);
    }
}

Node &
Cluster::node(NodeId id)
{
    AIWC_ASSERT(id < nodes_.size(), "node id out of range: ", id);
    return nodes_[id];
}

const Node &
Cluster::node(NodeId id) const
{
    AIWC_ASSERT(id < nodes_.size(), "node id out of range: ", id);
    return nodes_[id];
}

int
Cluster::freeGpus() const
{
    int n = 0;
    for (const auto &node : nodes_)
        n += node.freeGpus();
    return n;
}

int
Cluster::freeCpuSlots() const
{
    int n = 0;
    for (const auto &node : nodes_)
        n += node.freeCpuSlots();
    return n;
}

NodeId
Cluster::nodeOfGpu(GpuId gpu) const
{
    const auto per_node = static_cast<GpuId>(spec_.node.gpus);
    const auto node = gpu / per_node;
    AIWC_ASSERT(node < nodes_.size(), "GPU id out of range: ", gpu);
    return node;
}

} // namespace aiwc::sim
