#include "aiwc/scenario/report.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "aiwc/common/table.hh"

namespace aiwc::scenario
{

namespace
{

/** Shortest decimal form that round-trips to the same double. */
std::string
jsonNumber(double v)
{
    if (v != v)
        return "0";  // NaN never reaches a report, but stay total
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
        if (std::atof(shorter) == v)
            return shorter;
    }
    return buf;
}

/** Escape the few characters that can appear in class/mix names. */
std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

/** Snake-case JSON keys for the SLA-class wait blocks. */
const char *const sla_keys[num_sla_classes] = {
    "latency_sensitive",
    "batch",
    "scavenger",
};

void
writeWaits(std::ostream &os, const CellStats &stats)
{
    os << "\"waits\":{";
    for (int c = 0; c < num_sla_classes; ++c) {
        const WaitQuantiles &w = stats.waits[static_cast<std::size_t>(c)];
        if (c > 0)
            os << ',';
        os << '"' << sla_keys[c] << "\":{\"tasks\":" << w.tasks
           << ",\"p50\":" << jsonNumber(w.p50)
           << ",\"p95\":" << jsonNumber(w.p95)
           << ",\"p99\":" << jsonNumber(w.p99) << '}';
    }
    os << '}';
}

void
writeCell(std::ostream &os, const CellResult &cell)
{
    const CellStats &s = cell.stats;
    os << "{\"machine_class\":" << jsonString(cell.machine_class)
       << ",\"task_mix\":" << jsonString(cell.task_mix)
       << ",\"policy\":" << jsonString(cell.policy)
       << ",\"tasks\":" << s.tasks << ",\"finished\":" << s.finished
       << ",\"dropped\":" << s.dropped
       << ",\"migrations\":" << s.migrations << ",\"wakes\":" << s.wakes
       << ",\"sla_violations\":" << s.sla_violations
       << ",\"violation_rate\":" << jsonNumber(s.violation_rate)
       << ",\"joules\":" << jsonNumber(s.joules)
       << ",\"kwh\":" << jsonNumber(s.joules / 3.6e6)
       << ",\"makespan_s\":" << jsonNumber(s.makespan)
       << ",\"mean_utilization\":" << jsonNumber(s.mean_utilization)
       << ',';
    writeWaits(os, s);
    os << ",\"overlay\":{\"computed\":"
       << (cell.overlay.computed ? "true" : "false")
       << ",\"power_cap_throughput_gain\":"
       << jsonNumber(cell.overlay.power_cap_throughput_gain)
       << ",\"colocation_gpu_hours_saved\":"
       << jsonNumber(cell.overlay.colocation_gpu_hours_saved)
       << ",\"multi_tier_cost_saving\":"
       << jsonNumber(cell.overlay.multi_tier_cost_saving) << "}}";
}

} // namespace

std::vector<std::size_t>
paretoFrontier(const std::vector<CellResult> &cells)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellStats &a = cells[i].stats;
        bool dominated = false;
        for (std::size_t j = 0; j < cells.size() && !dominated; ++j) {
            if (j == i)
                continue;
            const CellStats &b = cells[j].stats;
            const bool no_worse = b.joules <= a.joules &&
                                  b.violation_rate <= a.violation_rate;
            const bool better = b.joules < a.joules ||
                                b.violation_rate < a.violation_rate;
            if (no_worse && better)
                dominated = true;
            // Exact ties keep only the earliest cell.
            if (j < i && b.joules == a.joules &&
                b.violation_rate == a.violation_rate)
                dominated = true;
        }
        if (!dominated)
            frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end(),
              [&cells](std::size_t a, std::size_t b) {
                  if (cells[a].stats.joules != cells[b].stats.joules)
                      return cells[a].stats.joules < cells[b].stats.joules;
                  return a < b;
              });
    return frontier;
}

void
FrontierReport::writeJson(std::ostream &os) const
{
    os << "{\"schema\":\"aiwc-scenario-frontier-v1\",\"scenario\":"
       << jsonString(scenario) << ",\"seed\":" << seed << ",\"cells\":[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            os << ',';
        writeCell(os, cells[i]);
    }
    os << "],\"frontier\":[";
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        if (i > 0)
            os << ',';
        os << frontier[i];
    }
    os << "]}";
}

std::string
FrontierReport::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

void
FrontierReport::printTable(std::ostream &os) const
{
    TextTable table({"Machine class", "Task mix", "Policy", "kWh",
                     "SLA viol %", "p95 wait (lat)", "Util %", "Frontier"});
    std::vector<bool> on_frontier(cells.size(), false);
    for (std::size_t idx : frontier)
        if (idx < cells.size())
            on_frontier[idx] = true;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellResult &cell = cells[i];
        const WaitQuantiles &lat = cell.stats.waits[static_cast<std::size_t>(
            SlaClass::LatencySensitive)];
        table.addRow({cell.machine_class, cell.task_mix, cell.policy,
                      formatNumber(cell.stats.joules / 3.6e6, 3),
                      formatNumber(cell.stats.violation_rate * 100.0, 2),
                      formatNumber(lat.p95, 1) + " s",
                      formatNumber(cell.stats.mean_utilization * 100.0, 1),
                      on_frontier[i] ? "*" : ""});
    }
    table.print(os);
}

} // namespace aiwc::scenario
