#include "aiwc/scenario/engine.hh"

#include <algorithm>
#include <queue>

#include "aiwc/base/check.hh"
#include "aiwc/obs/metrics.hh"
#include "aiwc/sketch/kll.hh"

namespace aiwc::scenario
{

namespace
{

/** Engine-level observability; totals are order-independent sums. */
struct EngineMetrics
{
    obs::Counter &cells;
    obs::Counter &tasks;
    obs::Counter &migrations;
    obs::Counter &wakes;
    obs::Counter &sla_violations;

    static EngineMetrics &
    get()
    {
        auto &reg = obs::MetricsRegistry::global();
        static EngineMetrics m{
            reg.counter("aiwc.scenario.cells"),
            reg.counter("aiwc.scenario.tasks"),
            reg.counter("aiwc.scenario.migrations"),
            reg.counter("aiwc.scenario.wakes"),
            reg.counter("aiwc.scenario.sla_violations"),
        };
        return m;
    }
};

/** Event kinds, in same-timestamp processing order. */
enum : int
{
    ev_completion = 0,
    ev_wake_place = 1,
    ev_arrival = 2,
    ev_tick = 3,
};

struct Event
{
    Seconds time = 0.0;
    int kind = ev_arrival;
    std::uint64_t seq = 0;      //!< tie-break: insertion order
    std::uint32_t tidx = 0;     //!< task index (not used by ticks)
    std::uint32_t gen = 0;      //!< completion generation (migrations)
};

struct EventLater
{
    bool
    operator()(const Event &a, const Event &b) const
    {
        if (a.time != b.time)
            return a.time > b.time;
        if (a.kind != b.kind)
            return a.kind > b.kind;
        return a.seq > b.seq;
    }
};

/** Per-task runtime bookkeeping. */
struct Run
{
    enum class State : std::uint8_t
    {
        Pending,   //!< queued, no machine yet
        Waking,    //!< reserved on a machine that is powering up
        Running,
        Done,
        Dropped,
    };

    State state = State::Pending;
    int machine = -1;
    int p_state = 0;
    double remaining = 1.0;     //!< work units left at run_start
    Seconds placed_at = 0.0;    //!< resources charged since
    Seconds run_start = 0.0;    //!< work (re)starts here
    Seconds run_end = 0.0;
    std::uint32_t gen = 0;      //!< invalidates stale completions
    bool started = false;       //!< wait already recorded
};

class CellSimulator
{
  public:
    CellSimulator(Fleet fleet, const std::vector<Task> &tasks,
                  const SchedulingPolicy &policy,
                  const EngineOptions &options)
        : fleet_(std::move(fleet)), tasks_(tasks), policy_(policy),
          options_(options), runs_(tasks.size()),
          wait_sketches_{sketch::KllSketch(128, 1), sketch::KllSketch(128, 2),
                         sketch::KllSketch(128, 3)}
    {
    }

    CellStats
    run()
    {
        // Policies that sleep idle machines start the fleet asleep.
        for (Machine &m : fleet_.machines) {
            const int s = policy_.idleSleepState(m);
            if (s > 0)
                m.sleep(s, 0.0);
        }
        for (std::uint32_t i = 0; i < tasks_.size(); ++i)
            push({tasks_[i].arrival, ev_arrival, 0, i, 0});
        const Seconds tick = consolidationPeriod();
        if (tick > 0.0)
            push({tick, ev_tick, 0, 0, 0});

        while (!events_.empty()) {
            Event ev = events_.top();
            events_.pop();
            switch (ev.kind) {
              case ev_arrival: arrive(ev); break;
              case ev_completion: complete(ev); break;
              case ev_wake_place: wakePlace(ev); break;
              case ev_tick: consolidate(ev); break;
            }
        }
        finishStats();
        return stats_;
    }

  private:
    void
    push(Event ev)
    {
        ev.seq = next_seq_++;
        events_.push(ev);
    }

    Seconds
    consolidationPeriod() const
    {
        const Seconds p = policy_.consolidationInterval();
        // Clamp so a misbehaving policy cannot wedge the event loop.
        return p > 0.0 ? (p < 1.0 ? 1.0 : p) : 0.0;
    }

    /** Work-unit duration of `task` on `m` at P-state p. */
    Seconds
    durationOn(const Machine &m, const Task &task, int p) const
    {
        const MachineClassSpec &cls = m.cls();
        double dur;
        if (task.gpus > 0) {
            dur = task.expected_runtime / cls.gpu_relative_speed;
        } else {
            dur = task.expected_runtime * options_.reference_mips /
                  cls.mipsAt(p);
            if (cls.cpu != task.preferred_isa)
                dur *= options_.isa_mismatch_penalty;
        }
        return dur > 1.0e-6 ? dur : 1.0e-6;
    }

    bool
    fitsAnyClass(const Task &task) const
    {
        for (const Machine &m : fleet_.machines) {
            const MachineClassSpec &cls = m.cls();
            if (task.cores <= cls.cores && task.memory_gb <= cls.memory_gb &&
                task.gpus <= cls.gpus)
                return true;
        }
        return false;
    }

    void
    arrive(const Event &ev)
    {
        const Task &task = tasks_[ev.tidx];
        ++stats_.tasks;
        note(task.arrival);
        if (!fitsAnyClass(task)) {
            runs_[ev.tidx].state = Run::State::Dropped;
            drop(task);
            return;
        }
        pending_.push_back(ev.tidx);
        drain(task.arrival);
    }

    /** Try to place every pending task, FIFO order, at time `now`. */
    void
    drain(Seconds now)
    {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            const std::uint32_t tidx = pending_[i];
            if (!tryPlace(tidx, now))
                pending_[kept++] = tidx;
        }
        pending_.resize(kept);
    }

    bool
    tryPlace(std::uint32_t tidx, Seconds now)
    {
        const Task &task = tasks_[tidx];
        const Placement pick = policy_.place(fleet_, task);
        if (pick.machine < 0 ||
            static_cast<std::size_t>(pick.machine) >= fleet_.machines.size())
            return false;
        Machine &m = fleet_.machines[static_cast<std::size_t>(pick.machine)];
        Run &run = runs_[tidx];
        run.machine = pick.machine;
        run.p_state = pick.p_state;
        if (m.awake()) {
            if (!m.canFit(demandFor(task, pick.p_state)))
                return false;  // tolerate a bad custom policy
            start(tidx, m, now);
            return true;
        }
        if (m.waking())
            return false;  // already reserved by another task
        const Seconds ready = m.wake(now);
        ++stats_.wakes;
        run.state = Run::State::Waking;
        push({ready, ev_wake_place, 0, tidx, 0});
        return true;
    }

    /** Charge resources and schedule completion at time `now`. */
    void
    start(std::uint32_t tidx, Machine &m, Seconds now)
    {
        const Task &task = tasks_[tidx];
        Run &run = runs_[tidx];
        m.place(demandFor(task, run.p_state), now);
        run.state = Run::State::Running;
        run.placed_at = now;
        run.run_start = now;
        run.run_end = now + run.remaining * durationOn(m, task, run.p_state);
        if (!run.started) {
            run.started = true;
            const Seconds wait = now - task.arrival;
            auto &w = wait_sketches_[static_cast<std::size_t>(task.sla)];
            w.add(wait >= 0.0 ? wait : 0.0);
            ++stats_.waits[static_cast<std::size_t>(task.sla)].tasks;
        }
        ++run.gen;
        push({run.run_end, ev_completion, 0, tidx, run.gen});
    }

    void
    wakePlace(const Event &ev)
    {
        Run &run = runs_[ev.tidx];
        if (run.state != Run::State::Waking)
            return;
        Machine &m = fleet_.machines[static_cast<std::size_t>(run.machine)];
        m.completeWake(ev.time);
        note(ev.time);
        if (!m.canFit(demandFor(tasks_[ev.tidx], run.p_state))) {
            run.state = Run::State::Pending;  // defensive; re-queue
            pending_.push_back(ev.tidx);
            return;
        }
        start(ev.tidx, m, ev.time);
        drain(ev.time);
    }

    void
    complete(const Event &ev)
    {
        Run &run = runs_[ev.tidx];
        if (run.state != Run::State::Running || ev.gen != run.gen)
            return;  // stale completion from before a migration
        const Task &task = tasks_[ev.tidx];
        Machine &m = fleet_.machines[static_cast<std::size_t>(run.machine)];
        m.remove(demandFor(task, run.p_state), ev.time);
        busy_core_seconds_ +=
            static_cast<double>(task.cores) * (ev.time - run.placed_at);
        run.state = Run::State::Done;
        run.remaining = 0.0;
        ++stats_.finished;
        note(ev.time);

        const Seconds service = ev.time - task.arrival;
        const double factor =
            task.sla == SlaClass::LatencySensitive
                ? options_.latency_sla_factor
                : options_.batch_sla_factor;
        if (task.sla != SlaClass::Scavenger &&
            service > factor * task.expected_runtime + options_.sla_grace)
            ++stats_.sla_violations;

        drain(ev.time);
        maybeSleep(m, ev.time);
    }

    /** Policy-directed sleep for a machine that went fully idle. */
    void
    maybeSleep(Machine &m, Seconds now)
    {
        if (!m.awake() || m.busyCores() > 0 || m.busyGpus() > 0)
            return;
        if (!pending_.empty())
            return;  // capacity may be wanted momentarily
        const int s = policy_.idleSleepState(m);
        if (s > 0)
            m.sleep(s, now);
    }

    void
    consolidate(const Event &ev)
    {
        const Seconds now = ev.time;
        std::vector<RunningView> running;
        for (std::uint32_t i = 0; i < runs_.size(); ++i) {
            const Run &run = runs_[i];
            if (run.state != Run::State::Running)
                continue;
            RunningView rv;
            rv.task_id = i;
            rv.machine = run.machine;
            rv.demand = demandFor(tasks_[i], run.p_state);
            rv.sla = tasks_[i].sla;
            const Seconds span = run.run_end - run.run_start;
            double done = 1.0;
            if (span > 0.0 && now > run.run_start)
                done = (now - run.run_start) / span;
            else if (now <= run.run_start)
                done = 0.0;
            const double rem = run.remaining * (1.0 - done);
            rv.remaining_fraction = rem < 0.0 ? 0.0 : rem;
            running.push_back(rv);
        }
        if (!running.empty()) {
            for (const Migration &mig :
                 policy_.consolidate(fleet_, running))
                applyMigration(mig, now);
        }
        // Keep ticking while there is (or will be) work in flight.
        const bool active = !running.empty() || !pending_.empty() ||
                            !events_.empty();
        if (active)
            push({now + consolidationPeriod(), ev_tick, 0, 0, 0});
    }

    void
    applyMigration(const Migration &mig, Seconds now)
    {
        if (mig.task_id >= runs_.size() || mig.to_machine < 0 ||
            static_cast<std::size_t>(mig.to_machine) >=
                fleet_.machines.size())
            return;
        Run &run = runs_[mig.task_id];
        if (run.state != Run::State::Running ||
            run.machine == mig.to_machine || now < run.run_start)
            return;
        const Task &task = tasks_[mig.task_id];
        Machine &dst =
            fleet_.machines[static_cast<std::size_t>(mig.to_machine)];
        const Demand demand = demandFor(task, run.p_state);
        if (!dst.awake() || !dst.canFit(demand))
            return;
        Machine &src = fleet_.machines[static_cast<std::size_t>(run.machine)];

        // Retire the source segment.
        const Seconds span = run.run_end - run.run_start;
        const double done = span > 0.0 ? (now - run.run_start) / span : 1.0;
        run.remaining *= (1.0 - (done < 1.0 ? done : 1.0));
        if (run.remaining < 0.0)
            run.remaining = 0.0;
        src.remove(demand, now);
        busy_core_seconds_ +=
            static_cast<double>(task.cores) * (now - run.placed_at);

        // Start the destination segment after the migration pause.
        dst.place(demand, now);
        run.machine = mig.to_machine;
        run.placed_at = now;
        run.run_start = now + options_.migration_cost;
        run.run_end = run.run_start +
                      run.remaining * durationOn(dst, task, run.p_state);
        ++run.gen;
        ++stats_.migrations;
        push({run.run_end, ev_completion, 0, mig.task_id, run.gen});
        maybeSleep(src, now);
    }

    /** A task the cell will never run: non-scavenger drops violate. */
    void
    drop(const Task &task)
    {
        ++stats_.dropped;
        if (task.sla != SlaClass::Scavenger)
            ++stats_.sla_violations;
    }

    /** Track the productive makespan (arrivals, starts, completions). */
    void
    note(Seconds t)
    {
        if (t > stats_.makespan)
            stats_.makespan = t;
    }

    void
    finishStats()
    {
        // Anything still pending with an empty event queue means no
        // machine could ever host it (the arrive() drop check should
        // have caught it; stay total regardless).
        for (std::uint32_t tidx : pending_)
            drop(tasks_[tidx]);
        pending_.clear();

        fleet_.advanceAll(stats_.makespan);
        stats_.joules = fleet_.totalJoules();
        const std::uint64_t settled = stats_.finished + stats_.dropped;
        stats_.violation_rate =
            settled > 0 ? static_cast<double>(stats_.sla_violations) /
                              static_cast<double>(settled)
                        : 0.0;
        double fleet_cores = 0.0;
        for (const Machine &m : fleet_.machines)
            fleet_cores += static_cast<double>(m.cls().cores);
        stats_.mean_utilization =
            fleet_cores > 0.0 && stats_.makespan > 0.0
                ? busy_core_seconds_ / (fleet_cores * stats_.makespan)
                : 0.0;
        for (int c = 0; c < num_sla_classes; ++c) {
            const auto &sk = wait_sketches_[static_cast<std::size_t>(c)];
            WaitQuantiles &w = stats_.waits[static_cast<std::size_t>(c)];
            if (sk.count() > 0) {
                w.p50 = sk.quantile(0.50);
                w.p95 = sk.quantile(0.95);
                w.p99 = sk.quantile(0.99);
            }
        }

        EngineMetrics &metrics = EngineMetrics::get();
        metrics.cells.add(1);
        metrics.tasks.add(stats_.tasks);
        metrics.migrations.add(stats_.migrations);
        metrics.wakes.add(stats_.wakes);
        metrics.sla_violations.add(stats_.sla_violations);
    }

    Fleet fleet_;
    const std::vector<Task> &tasks_;
    const SchedulingPolicy &policy_;
    EngineOptions options_;

    std::priority_queue<Event, std::vector<Event>, EventLater> events_;
    std::uint64_t next_seq_ = 0;
    std::vector<Run> runs_;
    std::vector<std::uint32_t> pending_;
    std::array<sketch::KllSketch, num_sla_classes> wait_sketches_;
    double busy_core_seconds_ = 0.0;
    CellStats stats_;
};

} // namespace

CellStats
simulateCell(const MachineClassSpec &cls, int count,
             const std::vector<Task> &tasks, const SchedulingPolicy &policy,
             const EngineOptions &options)
{
    MachineClassSpec local = cls;
    normalize(local);
    const int n = count > 0 ? count : 1;
    return CellSimulator(Fleet::homogeneous(local, n), tasks, policy,
                         options)
        .run();
}

CellStats
simulateFleet(const ScenarioSpec &spec, const std::vector<Task> &tasks,
              const SchedulingPolicy &policy, const EngineOptions &options)
{
    ScenarioSpec local = spec;
    for (MachineClassSpec &m : local.machines)
        normalize(m);
    if (local.totalMachines() == 0) {
        // A machine-less scenario still yields a total, empty result.
        CellStats stats;
        stats.tasks = tasks.size();
        stats.dropped = tasks.size();
        for (const Task &t : tasks)
            if (t.sla != SlaClass::Scavenger)
                ++stats.sla_violations;
        stats.violation_rate =
            tasks.empty() ? 0.0
                          : static_cast<double>(stats.sla_violations) /
                                static_cast<double>(tasks.size());
        return stats;
    }
    return CellSimulator(Fleet::fromSpec(local), tasks, policy, options)
        .run();
}

} // namespace aiwc::scenario
