#include "aiwc/scenario/machine.hh"

#include "aiwc/base/check.hh"

namespace aiwc::scenario
{

double
Machine::utilization() const
{
    if (!awake() || cls_->cores <= 0)
        return 0.0;
    return static_cast<double>(busy_cores_) /
           static_cast<double>(cls_->cores);
}

bool
Machine::canFit(const Demand &d) const
{
    return busy_cores_ + d.cores <= cls_->cores &&
           used_memory_gb_ + d.memory_gb <= cls_->memory_gb &&
           busy_gpus_ + d.gpus <= cls_->gpus;
}

double
Machine::watts() const
{
    if (s_state_ > 0)
        return cls_->s_state_watts[static_cast<std::size_t>(s_state_)];
    // Awake (or waking, which burns the awake base): chassis base +
    // per-core draws + per-GPU draws.
    double w = cls_->s_state_watts[0];
    w += busy_core_watts_;
    w += static_cast<double>(idleCores()) * cls_->idleCoreWatts();
    w += static_cast<double>(busy_gpus_) * cls_->gpu_tdp_watts;
    w += static_cast<double>(cls_->gpus - busy_gpus_) * cls_->gpu_idle_watts;
    return w;
}

void
Machine::advanceTo(Seconds t)
{
    if (t <= last_advance_)
        return;
    joules_ += watts() * (t - last_advance_);
    last_advance_ = t;
}

Seconds
Machine::wake(Seconds t)
{
    if (awake())
        return t;
    if (waking_)
        return wake_ready_at_;
    advanceTo(t);
    const Seconds latency = cls_->wakeSeconds(s_state_);
    s_state_ = 0;  // transition draws the awake base
    waking_ = true;
    wake_ready_at_ = t + latency;
    return wake_ready_at_;
}

void
Machine::completeWake(Seconds t)
{
    if (!waking_)
        return;
    advanceTo(t);
    waking_ = false;
}

void
Machine::sleep(int s, Seconds t)
{
    if (!awake() || busy_cores_ > 0 || busy_gpus_ > 0)
        return;
    const int deepest = cls_->deepestSleep();
    if (s < 1 || deepest < 1)
        return;
    advanceTo(t);
    s_state_ = s > deepest ? deepest : s;
}

void
Machine::place(const Demand &d, Seconds t)
{
    AIWC_DCHECK(awake(), "place on a sleeping machine");
    AIWC_DCHECK(canFit(d), "place past capacity");
    advanceTo(t);
    busy_cores_ += d.cores;
    used_memory_gb_ += d.memory_gb;
    busy_gpus_ += d.gpus;
    busy_core_watts_ +=
        static_cast<double>(d.cores) * cls_->busyCoreWatts(d.p_state);
}

void
Machine::remove(const Demand &d, Seconds t)
{
    advanceTo(t);
    busy_cores_ -= d.cores;
    used_memory_gb_ -= d.memory_gb;
    busy_gpus_ -= d.gpus;
    busy_core_watts_ -=
        static_cast<double>(d.cores) * cls_->busyCoreWatts(d.p_state);
    AIWC_DCHECK(busy_cores_ >= 0 && busy_gpus_ >= 0,
                "resource release underflow");
    if (busy_cores_ == 0)
        busy_core_watts_ = 0.0;  // absorb float dust at idle
    if (used_memory_gb_ < 0.0)
        used_memory_gb_ = 0.0;
}

Fleet
Fleet::fromSpec(const ScenarioSpec &spec)
{
    Fleet fleet;
    std::uint32_t id = 0;
    for (const MachineClassSpec &cls : spec.machines)
        for (int i = 0; i < cls.count; ++i)
            fleet.machines.emplace_back(&cls, id++);
    return fleet;
}

Fleet
Fleet::homogeneous(const MachineClassSpec &cls, int count)
{
    Fleet fleet;
    for (int i = 0; i < count; ++i)
        fleet.machines.emplace_back(&cls, static_cast<std::uint32_t>(i));
    return fleet;
}

double
Fleet::totalJoules() const
{
    double total = 0.0;
    for (const Machine &m : machines)
        total += m.joules();
    return total;
}

void
Fleet::advanceAll(Seconds t)
{
    for (Machine &m : machines)
        m.advanceTo(t);
}

} // namespace aiwc::scenario
