#include "aiwc/scenario/runner.hh"

#include <algorithm>

#include "aiwc/common/parallel.hh"
#include "aiwc/obs/metrics.hh"
#include "aiwc/obs/trace.hh"
#include "aiwc/opportunity/colocation_advisor.hh"
#include "aiwc/opportunity/multi_tier_planner.hh"
#include "aiwc/opportunity/power_cap_planner.hh"

namespace aiwc::scenario
{

namespace
{

struct RunnerMetrics
{
    obs::Counter &sweeps;
    obs::Histogram &cell_ns;

    static RunnerMetrics &
    get()
    {
        auto &reg = obs::MetricsRegistry::global();
        static RunnerMetrics m{
            reg.counter("aiwc.scenario.sweeps"),
            reg.histogram("aiwc.scenario.cell_ns"),
        };
        return m;
    }
};

/** GPU-accelerated task types: the planner overlays analyze these. */
bool
acceleratedType(TaskType t)
{
    return t == TaskType::Ai || t == TaskType::Stream || t == TaskType::Hpc;
}

/**
 * The cell's GPU slice: records that are GPU jobs *and* were tagged an
 * accelerated type by this mix. Re-derives the same keyed per-record
 * type draw as tasksFromDataset (same seed, same mix), so the slice is
 * a pure function of record content.
 */
core::Dataset
gpuSlice(const core::Dataset &dataset, const TaskMix &mix,
         std::uint64_t seed)
{
    const std::vector<Task> tasks = tasksFromDataset(dataset, mix, seed);
    // Type draws are keyed by record id; collect the accelerated ids.
    std::vector<std::uint32_t> ids;
    for (const Task &t : tasks)
        if (t.gpus > 0 && acceleratedType(t.type))
            ids.push_back(t.id);
    std::sort(ids.begin(), ids.end());
    std::vector<core::JobRecord> slice;
    for (const core::JobRecord &rec : dataset.records())
        if (rec.isGpuJob() &&
            std::binary_search(ids.begin(), ids.end(), rec.id))
            slice.push_back(rec);
    return core::Dataset(std::move(slice));
}

PlannerOverlay
computeOverlay(const core::Dataset &slice, const MachineClassSpec &cls,
               std::size_t min_gpu_jobs)
{
    PlannerOverlay overlay;
    if (slice.records().size() < min_gpu_jobs || cls.gpus == 0)
        return overlay;
    const double tdp = cls.gpu_tdp_watts;
    const opportunity::PowerCapPlanner capper(tdp);
    const std::vector<opportunity::PowerCapPlan> plans =
        capper.plan(slice, {tdp * 0.5, tdp * 2.0 / 3.0, tdp * 5.0 / 6.0});
    if (plans.size() >= 2)
        overlay.power_cap_throughput_gain = plans[1].throughput_gain;
    const opportunity::ColocationAdvisor advisor;
    overlay.colocation_gpu_hours_saved =
        advisor.analyze(slice).gpu_hours_saved_fraction;
    double economy_speed = cls.gpu_relative_speed;
    if (economy_speed >= 1.0)
        economy_speed = 0.5;  // class is already the fast tier
    const opportunity::MultiTierPlanner tiers(economy_speed);
    overlay.multi_tier_cost_saving = tiers.plan(slice).cost_saving_fraction;
    overlay.computed = true;
    return overlay;
}

} // namespace

ScenarioRunner::ScenarioRunner(const ScenarioSpec &spec, SweepOptions options)
    : spec_(spec), options_(options)
{
    for (MachineClassSpec &m : spec_.machines)
        normalize(m);
    for (TaskClassSpec &t : spec_.tasks)
        normalize(t);
    if (options_.machines_per_cell < 1)
        options_.machines_per_cell = 1;
}

FrontierReport
ScenarioRunner::sweep(
    const core::Dataset &dataset, const std::vector<TaskMix> &mixes,
    const std::vector<const SchedulingPolicy *> &policies) const
{
    obs::TraceSpan span("scenario.sweep");
    FrontierReport report;
    report.scenario = spec_.name;
    report.seed = options_.seed;
    const std::size_t n_cls = spec_.machines.size();
    const std::size_t n_mix = mixes.size();
    const std::size_t n_pol = policies.size();
    const std::size_t n_cells = n_cls * n_mix * n_pol;
    if (n_cells == 0)
        return report;

    // Derive each mix's task stream (and GPU slice) once, serially;
    // cells share them read-only.
    std::vector<std::vector<Task>> mix_tasks;
    std::vector<core::Dataset> mix_slices;
    mix_tasks.reserve(n_mix);
    for (const TaskMix &mix : mixes) {
        mix_tasks.push_back(tasksFromDataset(dataset, mix, options_.seed));
        if (options_.planner_overlays)
            mix_slices.push_back(gpuSlice(dataset, mix, options_.seed));
    }

    report.cells.resize(n_cells);
    // Shard-safe: cell i writes only report.cells[i]; overlays are
    // computed by the policy-0 cell of each (class, mix) pair and
    // copied across afterwards.
    parallelFor(globalPool(), n_cells, [&](std::size_t i) {
        obs::TraceSpan cell_span("scenario.cell");
        obs::ScopedTimer timer(RunnerMetrics::get().cell_ns);
        const std::size_t cls_i = i / (n_mix * n_pol);
        const std::size_t mix_i = (i / n_pol) % n_mix;
        const std::size_t pol_i = i % n_pol;
        const MachineClassSpec &cls = spec_.machines[cls_i];
        const SchedulingPolicy &policy = *policies[pol_i];
        CellResult &cell = report.cells[i];
        cell.machine_class = cls.name;
        cell.task_mix = mixes[mix_i].name;
        cell.policy = policy.name();
        const int count = cls.count < options_.machines_per_cell
                              ? (cls.count > 0 ? cls.count : 1)
                              : options_.machines_per_cell;
        cell.stats = simulateCell(cls, count, mix_tasks[mix_i], policy,
                                  options_.engine);
        if (pol_i == 0 && options_.planner_overlays)
            cell.overlay = computeOverlay(mix_slices[mix_i], cls,
                                          options_.min_overlay_gpu_jobs);
    });
    // Propagate each (class, mix) overlay to its sibling policies.
    for (std::size_t i = 0; i < n_cells; ++i)
        if (i % n_pol != 0)
            report.cells[i].overlay = report.cells[i - i % n_pol].overlay;

    report.frontier = paretoFrontier(report.cells);
    RunnerMetrics::get().sweeps.add(1);
    return report;
}

FrontierReport
ScenarioRunner::sweepSynthetic(
    const std::vector<const SchedulingPolicy *> &policies) const
{
    obs::TraceSpan span("scenario.sweep");
    FrontierReport report;
    report.scenario = spec_.name;
    report.seed = options_.seed;
    const std::size_t n_cls = spec_.machines.size();
    const std::size_t n_pol = policies.size();
    const std::size_t n_cells = n_cls * n_pol;
    if (n_cells == 0)
        return report;

    const std::vector<Task> tasks = tasksFromSpec(spec_, options_.seed);
    report.cells.resize(n_cells);
    parallelFor(globalPool(), n_cells, [&](std::size_t i) {
        obs::TraceSpan cell_span("scenario.cell");
        obs::ScopedTimer timer(RunnerMetrics::get().cell_ns);
        const std::size_t cls_i = i / n_pol;
        const std::size_t pol_i = i % n_pol;
        const MachineClassSpec &cls = spec_.machines[cls_i];
        const SchedulingPolicy &policy = *policies[pol_i];
        CellResult &cell = report.cells[i];
        cell.machine_class = cls.name;
        cell.task_mix = "spec";
        cell.policy = policy.name();
        const int count = cls.count < options_.machines_per_cell
                              ? (cls.count > 0 ? cls.count : 1)
                              : options_.machines_per_cell;
        cell.stats =
            simulateCell(cls, count, tasks, policy, options_.engine);
    });
    report.frontier = paretoFrontier(report.cells);
    RunnerMetrics::get().sweeps.add(1);
    return report;
}

} // namespace aiwc::scenario
