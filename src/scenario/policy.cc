#include "aiwc/scenario/policy.hh"

namespace aiwc::scenario
{

namespace
{

/** Can this task ever run on a machine of this class? */
bool
classFits(const MachineClassSpec &cls, const Task &task)
{
    return task.cores <= cls.cores && task.memory_gb <= cls.memory_gb &&
           task.gpus <= cls.gpus;
}

bool
fitsNow(const Machine &m, const Task &task, int p_state)
{
    return m.canFit(demandFor(task, p_state));
}

} // namespace

Demand
demandFor(const Task &task, int p_state)
{
    Demand d;
    d.cores = task.cores;
    d.memory_gb = task.memory_gb;
    d.gpus = task.gpus;
    d.p_state = p_state;
    return d;
}

Placement
GreedyPackPolicy::place(const Fleet &fleet, const Task &task) const
{
    // First fit among awake machines, then the first sleeping machine
    // that could host the task (the engine pays the wake).
    for (const Machine &m : fleet.machines)
        if (m.awake() && fitsNow(m, task, 0))
            return {static_cast<int>(m.id()), 0};
    for (const Machine &m : fleet.machines)
        if (!m.awake() && !m.waking() && classFits(m.cls(), task))
            return {static_cast<int>(m.id()), 0};
    return {};
}

int
GreedyPackPolicy::idleSleepState(const Machine &machine) const
{
    return machine.cls().deepestSleep();
}

Placement
LoadBalancePolicy::place(const Fleet &fleet, const Task &task) const
{
    int best = -1;
    double best_util = 2.0;
    for (const Machine &m : fleet.machines) {
        if (!m.awake() || !fitsNow(m, task, 0))
            continue;
        const double util = m.utilization();
        if (util < best_util) {
            best_util = util;
            best = static_cast<int>(m.id());
        }
    }
    if (best >= 0)
        return {best, 0};
    // Everything awake is full; fall back to waking the first machine
    // that could host the task (load-balance fleets rarely sleep, but
    // a wedge-free policy must always make progress when possible).
    for (const Machine &m : fleet.machines)
        if (!m.awake() && !m.waking() && classFits(m.cls(), task))
            return {static_cast<int>(m.id()), 0};
    return {};
}

Placement
EnergyFirstPolicy::place(const Fleet &fleet, const Task &task) const
{
    // Batch work drops one P-state, scavenger work runs at the deepest;
    // the SLA factor absorbs the slowdown while per-core watts fall.
    auto p_for = [&](const Machine &m) {
        const int deepest =
            static_cast<int>(m.cls().p_state_watts.size()) - 1;
        switch (task.sla) {
          case SlaClass::LatencySensitive: return 0;
          case SlaClass::Batch: return deepest < 1 ? deepest : 1;
          case SlaClass::Scavenger: return deepest;
        }
        return 0;
    };
    // Prefer awake ISA-matched machines, then any awake fit, then wake.
    for (const Machine &m : fleet.machines)
        if (m.awake() && m.cls().cpu == task.preferred_isa &&
            fitsNow(m, task, p_for(m)))
            return {static_cast<int>(m.id()), p_for(m)};
    for (const Machine &m : fleet.machines)
        if (m.awake() && fitsNow(m, task, p_for(m)))
            return {static_cast<int>(m.id()), p_for(m)};
    for (const Machine &m : fleet.machines)
        if (!m.awake() && !m.waking() && classFits(m.cls(), task))
            return {static_cast<int>(m.id()), p_for(m)};
    return {};
}

int
EnergyFirstPolicy::idleSleepState(const Machine &machine) const
{
    return machine.cls().deepestSleep();
}

std::vector<Migration>
EnergyFirstPolicy::consolidate(const Fleet &fleet,
                               const std::vector<RunningView> &running) const
{
    // Drain machines running below the threshold onto busier awake
    // machines, in task-id order so the plan is deterministic. Track
    // headroom locally: the engine re-validates, but proposing a
    // consistent plan avoids half-applied passes.
    std::vector<Migration> plan;
    std::vector<int> extra_cores(fleet.machines.size(), 0);
    std::vector<double> extra_mem(fleet.machines.size(), 0.0);
    std::vector<int> extra_gpus(fleet.machines.size(), 0);
    for (const RunningView &rv : running) {
        if (rv.machine < 0 ||
            static_cast<std::size_t>(rv.machine) >= fleet.machines.size())
            continue;
        const Machine &src = fleet.machines[static_cast<std::size_t>(
            rv.machine)];
        if (!src.awake() || src.utilization() >= drain_below_)
            continue;
        // Nearly-done tasks are not worth the migration cost.
        if (rv.remaining_fraction < 0.25)
            continue;
        for (const Machine &dst : fleet.machines) {
            const std::size_t di = dst.id();
            if (static_cast<int>(di) == rv.machine || !dst.awake())
                continue;
            if (dst.utilization() <= src.utilization())
                continue;
            Demand d = rv.demand;
            d.cores += extra_cores[di];
            d.memory_gb += extra_mem[di];
            d.gpus += extra_gpus[di];
            if (!dst.canFit(d))
                continue;
            plan.push_back({rv.task_id, static_cast<int>(di)});
            extra_cores[di] += rv.demand.cores;
            extra_mem[di] += rv.demand.memory_gb;
            extra_gpus[di] += rv.demand.gpus;
            break;
        }
    }
    return plan;
}

} // namespace aiwc::scenario
