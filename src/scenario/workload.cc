#include "aiwc/scenario/workload.hh"

#include <algorithm>

#include "aiwc/common/rng.hh"

namespace aiwc::scenario
{

namespace
{

/** splitmix64 finalizer: keys a per-record Rng stream. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Draw a task type from the mix's cumulative weights. */
TaskType
drawType(const TaskMix &mix, Rng &rng)
{
    double total = 0.0;
    for (double w : mix.weights)
        total += w > 0.0 ? w : 0.0;
    if (total <= 0.0)
        return TaskType::Ai;
    double u = rng.uniform() * total;
    for (int t = 0; t < num_task_types; ++t) {
        const double w =
            mix.weights[static_cast<std::size_t>(t)] > 0.0
                ? mix.weights[static_cast<std::size_t>(t)]
                : 0.0;
        if (u < w)
            return static_cast<TaskType>(t);
        u -= w;
    }
    return TaskType::Hpc;
}

void
sortTasks(std::vector<Task> &tasks)
{
    std::sort(tasks.begin(), tasks.end(), [](const Task &a, const Task &b) {
        if (a.arrival != b.arrival)
            return a.arrival < b.arrival;
        return a.id < b.id;
    });
}

} // namespace

std::vector<TaskMix>
defaultTaskMixes()
{
    // Weight order matches the TaskType enum: WEB AI CRYPTO STREAM HPC.
    return {
        {"balanced", {0.20, 0.20, 0.20, 0.20, 0.20}},
        {"web_heavy", {0.55, 0.10, 0.05, 0.20, 0.10}},
        {"ai_heavy", {0.05, 0.60, 0.05, 0.10, 0.20}},
        {"stream_rt", {0.20, 0.10, 0.05, 0.55, 0.10}},
        {"hpc_batch", {0.05, 0.20, 0.15, 0.05, 0.55}},
    };
}

SlaClass
defaultSlaFor(TaskType type)
{
    switch (type) {
      case TaskType::Web:
      case TaskType::Stream: return SlaClass::LatencySensitive;
      case TaskType::Ai:
      case TaskType::Hpc: return SlaClass::Batch;
      case TaskType::Crypto: return SlaClass::Scavenger;
    }
    return SlaClass::Batch;
}

CpuIsa
defaultIsaFor(TaskType type)
{
    switch (type) {
      case TaskType::Web: return CpuIsa::X86;
      case TaskType::Ai: return CpuIsa::X86;
      case TaskType::Crypto: return CpuIsa::Arm;
      case TaskType::Stream: return CpuIsa::Arm;
      case TaskType::Hpc: return CpuIsa::Power;
    }
    return CpuIsa::X86;
}

std::vector<Task>
tasksFromDataset(const core::Dataset &dataset, const TaskMix &mix,
                 std::uint64_t seed)
{
    std::vector<Task> tasks;
    tasks.reserve(dataset.records().size());
    for (const core::JobRecord &rec : dataset.records()) {
        // Key the stream by record id, not position, so the draw is a
        // pure function of record content.
        Rng rng(mix64(seed ^ mix64(rec.id)));
        Task task;
        task.id = rec.id;
        task.type = drawType(mix, rng);
        task.sla = defaultSlaFor(task.type);
        task.preferred_isa = defaultIsaFor(task.type);
        task.arrival = rec.submit_time;
        const Seconds run = rec.runTime();
        task.expected_runtime = run > 1.0 ? run : 1.0;
        task.cores = rec.cpu_slots > 0 ? rec.cpu_slots : 1;
        task.memory_gb = rec.ram_gb > 0.0 ? rec.ram_gb : 0.0;
        task.gpus = rec.gpus > 0 ? rec.gpus : 0;
        tasks.push_back(task);
    }
    sortTasks(tasks);
    return tasks;
}

std::vector<Task>
tasksFromSpec(const ScenarioSpec &spec, std::uint64_t seed)
{
    constexpr std::size_t max_tasks = 200000;
    std::vector<Task> tasks;
    std::uint32_t next_id = 0;
    for (const TaskClassSpec &cls : spec.tasks) {
        Rng rng(mix64(seed ^ mix64(cls.seed)));
        Seconds t = cls.start_time;
        while (t < cls.end_time && tasks.size() < max_tasks) {
            Task task;
            task.id = next_id++;
            task.type = cls.type;
            task.sla = cls.sla;
            task.preferred_isa = cls.cpu;
            task.arrival = t;
            task.expected_runtime =
                cls.expected_runtime * rng.uniform(0.85, 1.15);
            task.cores = cls.cores;
            task.memory_gb = cls.memory_gb;
            task.gpus = cls.gpu ? 1 : 0;
            tasks.push_back(task);
            t += cls.inter_arrival * rng.uniform(0.5, 1.5);
        }
    }
    sortTasks(tasks);
    return tasks;
}

} // namespace aiwc::scenario
