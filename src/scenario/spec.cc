#include "aiwc/scenario/spec.hh"

#include <algorithm>

namespace aiwc::scenario
{

namespace
{

/** Clamp helper for the normalize() functions. */
double
clampd(double v, double lo, double hi)
{
    if (!(v >= lo))  // also catches NaN
        return lo;
    return v > hi ? hi : v;
}

int
clampi(int v, int lo, int hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Clamp every entry of a wattage/latency table into [lo, hi]. */
void
clampTable(std::vector<double> &table, double lo, double hi)
{
    for (double &v : table)
        v = clampd(v, lo, hi);
}

} // namespace

const char *
toString(CpuIsa isa)
{
    switch (isa) {
      case CpuIsa::X86: return "X86";
      case CpuIsa::Arm: return "ARM";
      case CpuIsa::Power: return "POWER";
      case CpuIsa::Riscv: return "RISCV";
    }
    return "?";
}

int
MachineClassSpec::deepestSleep() const
{
    return static_cast<int>(s_state_watts.size()) - 1;
}

double
MachineClassSpec::idleCoreWatts() const
{
    return c_state_watts.empty() ? 0.0 : c_state_watts.back();
}

double
MachineClassSpec::busyCoreWatts(int p) const
{
    if (p_state_watts.empty())
        return 0.0;
    const int last = static_cast<int>(p_state_watts.size()) - 1;
    return p_state_watts[static_cast<std::size_t>(clampi(p, 0, last))];
}

double
MachineClassSpec::mipsAt(int p) const
{
    if (mips.empty())
        return 1000.0;
    const int last = static_cast<int>(mips.size()) - 1;
    const double m = mips[static_cast<std::size_t>(clampi(p, 0, last))];
    return m > 0.0 ? m : 1.0;
}

double
MachineClassSpec::wakeSeconds(int s) const
{
    if (s_wake_seconds.empty() || s <= 0)
        return 0.0;
    const int last = static_cast<int>(s_wake_seconds.size()) - 1;
    const double w =
        s_wake_seconds[static_cast<std::size_t>(clampi(s, 0, last))];
    return w > 0.0 ? w : 0.0;
}

void
normalize(MachineClassSpec &m)
{
    if (m.name.empty())
        m.name = "machine-class";
    m.count = clampi(m.count, 0, 100000);
    m.cores = clampi(m.cores, 1, 4096);
    m.memory_gb = clampd(m.memory_gb, 0.25, 1.0e6);
    m.gpus = clampi(m.gpus, 0, 64);
    m.gpu_memory_gb = clampd(m.gpu_memory_gb, 1.0, 1.0e4);
    m.gpu_tdp_watts = clampd(m.gpu_tdp_watts, 1.0, 1.0e4);
    m.gpu_idle_watts = clampd(m.gpu_idle_watts, 0.0, m.gpu_tdp_watts);
    m.gpu_relative_speed = clampd(m.gpu_relative_speed, 0.01, 1.0);

    // Power tables: never empty, bounded, and latencies sized to the
    // S-state table so wakeSeconds() indexing is always valid.
    if (m.s_state_watts.empty())
        m.s_state_watts.push_back(100.0);
    if (m.p_state_watts.empty())
        m.p_state_watts.push_back(10.0);
    if (m.c_state_watts.empty())
        m.c_state_watts.push_back(0.0);
    if (m.mips.empty())
        m.mips.push_back(1000.0);
    constexpr std::size_t max_states = 16;
    auto truncate = [](std::vector<double> &t) {
        if (t.size() > max_states)
            t.resize(max_states);
    };
    truncate(m.s_state_watts);
    truncate(m.p_state_watts);
    truncate(m.c_state_watts);
    truncate(m.mips);
    truncate(m.s_wake_seconds);
    clampTable(m.s_state_watts, 0.0, 1.0e6);
    clampTable(m.p_state_watts, 0.0, 1.0e6);
    clampTable(m.c_state_watts, 0.0, 1.0e6);
    clampTable(m.mips, 1.0, 1.0e9);
    clampTable(m.s_wake_seconds, 0.0, 1.0e6);
    m.s_wake_seconds.resize(m.s_state_watts.size(), 0.0);
    m.s_wake_seconds[0] = 0.0;  // S0 is awake; nothing to wake from
}

void
normalize(TaskClassSpec &t)
{
    if (t.name.empty())
        t.name = "task-class";
    t.start_time = clampd(t.start_time, 0.0, 1.0e12);
    t.end_time = clampd(t.end_time, t.start_time, 1.0e12);
    t.inter_arrival = clampd(t.inter_arrival, 0.001, 1.0e12);
    t.expected_runtime = clampd(t.expected_runtime, 0.001, 1.0e12);
    t.memory_gb = clampd(t.memory_gb, 0.0, 1.0e6);
    t.cores = clampi(t.cores, 1, 4096);
}

int
ScenarioSpec::totalMachines() const
{
    int total = 0;
    for (const MachineClassSpec &m : machines)
        total += m.count;
    return total;
}

sim::ClusterSpec
toClusterSpec(const MachineClassSpec &m)
{
    sim::ClusterSpec spec;
    spec.name = m.name;
    spec.nodes = m.count > 0 ? m.count : 1;
    spec.node.sockets = 1;
    spec.node.cores_per_socket = m.cores;
    spec.node.hyperthreads_per_core = 1;
    spec.node.ram_gb = m.memory_gb;
    spec.node.gpus = m.gpus;
    if (m.gpus > 0) {
        spec.node.gpu.model = m.name + "-gpu";
        spec.node.gpu.memory_gb = m.gpu_memory_gb;
        spec.node.gpu.tdp_watts = m.gpu_tdp_watts;
        spec.node.gpu.idle_watts = m.gpu_idle_watts;
        spec.node.gpu.relative_speed = m.gpu_relative_speed;
    }
    return spec;
}

MachineClassSpec
fromMachineSpec(const sim::MachineSpec &m)
{
    MachineClassSpec cls;
    cls.name = m.name;
    cls.count = m.nodes;
    cls.cpu = CpuIsa::X86;
    cls.cores = m.sockets * m.cores_per_socket * m.hyperthreads_per_core;
    cls.memory_gb = m.ram_gb;
    cls.gpus = m.gpus;
    cls.gpu_memory_gb = m.gpu_memory_gb;
    cls.gpu_tdp_watts = m.gpu_tdp_watts;
    cls.gpu_idle_watts = m.gpu_idle_watts;
    cls.gpu_relative_speed = m.gpu_relative_speed;
    normalize(cls);
    return cls;
}

} // namespace aiwc::scenario
