#include "aiwc/scenario/scn_parser.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "aiwc/obs/metrics.hh"

namespace aiwc::scenario
{

namespace
{

/** Parser-side observability (names per the aiwc.* convention). */
struct ScnMetrics
{
    obs::Counter &parses;
    obs::Counter &diagnostics;

    static ScnMetrics &
    get()
    {
        static ScnMetrics m{
            obs::MetricsRegistry::global().counter("aiwc.scenario.scn_parses"),
            obs::MetricsRegistry::global().counter(
                "aiwc.scenario.scn_diagnostics"),
        };
        return m;
    }
};

std::string
trim(std::string_view s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0)
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0)
        --e;
    return std::string(s.substr(b, e - b));
}

std::string
lower(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    return out;
}

/** Strip `#` and `//` comments (no string literals in the grammar). */
std::string_view
stripComment(std::string_view line)
{
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '#')
            return line.substr(0, i);
        if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/')
            return line.substr(0, i);
    }
    return line;
}

/** Tolerant scalar parse; false (value untouched) on garbage. */
bool
parseNumber(const std::string &text, double &value)
{
    const std::string t = trim(text);
    if (t.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    if (v != v)  // NaN never enters a spec
        return false;
    value = v;
    return true;
}

bool
parseBool(const std::string &text, bool &value)
{
    const std::string t = lower(trim(text));
    if (t == "yes" || t == "true" || t == "1") {
        value = true;
        return true;
    }
    if (t == "no" || t == "false" || t == "0") {
        value = false;
        return true;
    }
    return false;
}

/** Parse `[a, b, c]` (brackets optional) into at most 32 doubles. */
bool
parseList(const std::string &text, std::vector<double> &out)
{
    std::string t = trim(text);
    if (!t.empty() && t.front() == '[')
        t.erase(t.begin());
    if (!t.empty() && t.back() == ']')
        t.pop_back();
    std::vector<double> values;
    std::string item;
    std::stringstream ss(t);
    bool all_ok = true;
    while (std::getline(ss, item, ',')) {
        const std::string it = trim(item);
        if (it.empty())
            continue;
        double v = 0.0;
        if (!parseNumber(it, v)) {
            all_ok = false;
            continue;
        }
        if (values.size() < 32)
            values.push_back(v);
    }
    if (values.empty())
        return false;
    out = values;
    return all_ok;
}

bool
parseIsa(const std::string &text, CpuIsa &isa)
{
    const std::string t = lower(trim(text));
    if (t == "x86") {
        isa = CpuIsa::X86;
        return true;
    }
    if (t == "arm") {
        isa = CpuIsa::Arm;
        return true;
    }
    if (t == "power") {
        isa = CpuIsa::Power;
        return true;
    }
    if (t == "riscv" || t == "risc-v") {
        isa = CpuIsa::Riscv;
        return true;
    }
    return false;
}

bool
parseTaskType(const std::string &text, TaskType &type)
{
    const std::string t = lower(trim(text));
    if (t == "web") {
        type = TaskType::Web;
        return true;
    }
    if (t == "ai") {
        type = TaskType::Ai;
        return true;
    }
    if (t == "crypto") {
        type = TaskType::Crypto;
        return true;
    }
    if (t == "stream" || t == "streaming") {
        type = TaskType::Stream;
        return true;
    }
    if (t == "hpc") {
        type = TaskType::Hpc;
        return true;
    }
    return false;
}

bool
parseSla(const std::string &text, SlaClass &sla)
{
    const std::string t = lower(trim(text));
    if (t == "sla0" || t == "latency-sensitive") {
        sla = SlaClass::LatencySensitive;
        return true;
    }
    if (t == "sla1" || t == "sla2" || t == "batch") {
        sla = SlaClass::Batch;
        return true;
    }
    if (t == "sla3" || t == "scavenger" || t == "best-effort") {
        sla = SlaClass::Scavenger;
        return true;
    }
    return false;
}

/** The line-by-line state machine behind parseScn(). */
class Parser
{
  public:
    explicit Parser(std::string scenario_name)
    {
        result_.spec.name = std::move(scenario_name);
    }

    ScnParseResult
    run(std::string_view text)
    {
        std::size_t pos = 0;
        while (pos <= text.size()) {
            const std::size_t nl = text.find('\n', pos);
            const std::string_view raw =
                text.substr(pos, nl == std::string_view::npos ? text.npos
                                                              : nl - pos);
            ++line_no_;
            handleLine(trim(stripComment(raw)));
            if (nl == std::string_view::npos)
                break;
            pos = nl + 1;
        }
        if (state_ != State::Top) {
            diagnose("unterminated block at end of input");
            closeBlock();
        }
        ScnMetrics::get().parses.add(1);
        ScnMetrics::get().diagnostics.add(result_.diagnostics.size());
        return std::move(result_);
    }

  private:
    enum class State
    {
        Top,
        WantBrace,   //!< saw a header, expecting `{`
        InMachine,
        InTask,
    };

    void
    diagnose(std::string message)
    {
        // Bound the diagnostic list so adversarial input cannot turn a
        // parse into an allocation storm; keep a final marker entry.
        constexpr std::size_t max_diags = 256;
        if (result_.diagnostics.size() == max_diags)
            result_.diagnostics.push_back(
                {line_no_, "further diagnostics suppressed"});
        if (result_.diagnostics.size() <= max_diags)
            result_.diagnostics.push_back({line_no_, std::move(message)});
    }

    void
    handleLine(const std::string &line)
    {
        if (line.empty())
            return;
        if (state_ == State::Top || state_ == State::WantBrace) {
            handleTop(line);
            return;
        }
        if (line == "}") {
            closeBlock();
            return;
        }
        if (line == "{") {
            diagnose("nested '{' inside a block");
            return;
        }
        handleKeyValue(line);
    }

    void
    handleTop(const std::string &line)
    {
        if (line == "{") {
            if (state_ == State::WantBrace) {
                state_ = pending_;
                return;
            }
            diagnose("'{' without a preceding class header");
            return;
        }
        if (state_ == State::WantBrace) {
            // Header without a block: treat this line as top-level.
            diagnose("class header not followed by '{'");
            state_ = State::Top;
        }
        std::string head = lower(line);
        if (!head.empty() && head.back() == ':')
            head.pop_back();
        head = trim(head);
        if (head == "machine class") {
            machine_ = MachineClassSpec{};
            machine_.name.clear();
            pending_ = State::InMachine;
            state_ = State::WantBrace;
            return;
        }
        if (head == "task class") {
            task_ = TaskClassSpec{};
            task_.name.clear();
            pending_ = State::InTask;
            state_ = State::WantBrace;
            return;
        }
        diagnose("unrecognized top-level line: '" + line + "'");
    }

    void
    closeBlock()
    {
        if (state_ == State::InMachine) {
            if (machine_.name.empty())
                machine_.name =
                    "machine-class-" +
                    std::to_string(result_.spec.machines.size());
            normalize(machine_);
            if (result_.spec.machines.size() < 64)
                result_.spec.machines.push_back(machine_);
            else
                diagnose("too many machine classes (limit 64)");
        } else if (state_ == State::InTask) {
            if (task_.name.empty())
                task_.name =
                    "task-class-" + std::to_string(result_.spec.tasks.size());
            normalize(task_);
            if (result_.spec.tasks.size() < 256)
                result_.spec.tasks.push_back(task_);
            else
                diagnose("too many task classes (limit 256)");
        }
        state_ = State::Top;
    }

    void
    handleKeyValue(const std::string &line)
    {
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) {
            diagnose("expected 'key: value', got '" + line + "'");
            return;
        }
        const std::string key = lower(trim(line.substr(0, colon)));
        const std::string value = trim(line.substr(colon + 1));
        if (state_ == State::InMachine)
            machineKey(key, value);
        else
            taskKey(key, value);
    }

    /** Diagnose-and-default numeric assignment. */
    void
    number(const std::string &key, const std::string &value, double &out)
    {
        if (!parseNumber(value, out))
            diagnose("bad number for '" + key + "': '" + value + "'");
    }

    void
    integer(const std::string &key, const std::string &value, int &out)
    {
        double v = 0.0;
        if (!parseNumber(value, v)) {
            diagnose("bad number for '" + key + "': '" + value + "'");
            return;
        }
        if (v < -2.0e9)
            v = -2.0e9;
        if (v > 2.0e9)
            v = 2.0e9;
        out = static_cast<int>(v);
    }

    void
    list(const std::string &key, const std::string &value,
         std::vector<double> &out)
    {
        if (!parseList(value, out))
            diagnose("bad list for '" + key + "': '" + value + "'");
    }

    void
    machineKey(const std::string &key, const std::string &value)
    {
        double ms = 0.0;
        if (key == "name") {
            machine_.name = value;
        } else if (key == "number of machines") {
            integer(key, value, machine_.count);
        } else if (key == "cpu type") {
            if (!parseIsa(value, machine_.cpu))
                diagnose("unknown CPU type '" + value + "'");
        } else if (key == "number of cores") {
            integer(key, value, machine_.cores);
        } else if (key == "memory") {
            if (parseNumber(value, ms))
                machine_.memory_gb = ms / 1024.0;  // file is MB
            else
                diagnose("bad number for 'memory': '" + value + "'");
        } else if (key == "s-states") {
            list(key, value, machine_.s_state_watts);
        } else if (key == "s-state latencies") {
            std::vector<double> latencies_ms;
            if (parseList(value, latencies_ms)) {
                machine_.s_wake_seconds.clear();
                for (double v : latencies_ms)
                    machine_.s_wake_seconds.push_back(v / 1000.0);
            } else {
                diagnose("bad list for 's-state latencies': '" + value + "'");
            }
        } else if (key == "p-states") {
            list(key, value, machine_.p_state_watts);
        } else if (key == "c-states") {
            list(key, value, machine_.c_state_watts);
        } else if (key == "mips") {
            list(key, value, machine_.mips);
        } else if (key == "gpus") {
            bool has = false;
            if (!parseBool(value, has))
                diagnose("bad yes/no for 'gpus': '" + value + "'");
            else if (has && machine_.gpus == 0)
                machine_.gpus = 2;
            else if (!has)
                machine_.gpus = 0;
        } else if (key == "number of gpus") {
            integer(key, value, machine_.gpus);
        } else if (key == "gpu speed") {
            number(key, value, machine_.gpu_relative_speed);
        } else if (key == "gpu tdp") {
            number(key, value, machine_.gpu_tdp_watts);
        } else if (key == "gpu idle watts") {
            number(key, value, machine_.gpu_idle_watts);
        } else {
            diagnose("unknown machine-class key '" + key + "'");
        }
    }

    void
    taskKey(const std::string &key, const std::string &value)
    {
        auto millis = [&](Seconds &out) {
            double ms = 0.0;
            if (parseNumber(value, ms))
                out = ms / 1000.0;  // file is milliseconds
            else
                diagnose("bad number for '" + key + "': '" + value + "'");
        };
        if (key == "name") {
            task_.name = value;
        } else if (key == "start time") {
            millis(task_.start_time);
        } else if (key == "end time") {
            millis(task_.end_time);
        } else if (key == "inter arrival") {
            millis(task_.inter_arrival);
        } else if (key == "expected runtime") {
            millis(task_.expected_runtime);
        } else if (key == "memory") {
            double mb = 0.0;
            if (parseNumber(value, mb))
                task_.memory_gb = mb / 1024.0;
            else
                diagnose("bad number for 'memory': '" + value + "'");
        } else if (key == "number of cores") {
            integer(key, value, task_.cores);
        } else if (key == "vm type") {
            // Accepted for cloudsim compatibility; no VM layer here.
        } else if (key == "gpu enabled") {
            if (!parseBool(value, task_.gpu))
                diagnose("bad yes/no for 'gpu enabled': '" + value + "'");
        } else if (key == "sla type") {
            if (!parseSla(value, task_.sla))
                diagnose("unknown SLA type '" + value + "'");
        } else if (key == "cpu type") {
            if (!parseIsa(value, task_.cpu))
                diagnose("unknown CPU type '" + value + "'");
        } else if (key == "task type") {
            if (!parseTaskType(value, task_.type))
                diagnose("unknown task type '" + value + "'");
        } else if (key == "seed") {
            double v = 0.0;
            if (parseNumber(value, v) && v >= 0.0 && v < 1.8e19)
                task_.seed = static_cast<std::uint64_t>(v);
            else
                diagnose("bad seed: '" + value + "'");
        } else {
            diagnose("unknown task-class key '" + key + "'");
        }
    }

    ScnParseResult result_;
    State state_ = State::Top;
    State pending_ = State::Top;
    MachineClassSpec machine_;
    TaskClassSpec task_;
    int line_no_ = 0;
};

} // namespace

ScnParseResult
parseScn(std::string_view text, std::string scenario_name)
{
    return Parser(std::move(scenario_name)).run(text);
}

ScnParseResult
parseScnFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ScnParseResult result;
        result.diagnostics.push_back({0, "cannot open '" + path + "'"});
        return result;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    // Scenario name = file stem, e.g. scenarios/fleet.scn -> "fleet".
    std::string name = path;
    const std::size_t slash = name.find_last_of("/\\");
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    const std::size_t dot = name.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        name = name.substr(0, dot);
    return parseScn(buf.str(), name);
}

} // namespace aiwc::scenario
