#include "aiwc/dist/distributions.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "aiwc/base/logging.hh"

namespace aiwc::dist
{

double
normalQuantile(double q)
{
    AIWC_ASSERT(q > 0.0 && q < 1.0, "normal quantile needs q in (0,1)");

    // Acklam's rational approximation; relative error < 1.15e-9.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00, 2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    constexpr double p_low = 0.02425;
    double x = 0.0;
    if (q < p_low) {
        const double u = std::sqrt(-2.0 * std::log(q));
        x = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u +
             c[5]) /
            ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
    } else if (q <= 1.0 - p_low) {
        const double u = q - 0.5;
        const double r = u * u;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) * u /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        const double u = std::sqrt(-2.0 * std::log(1.0 - q));
        x = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u +
              c[5]) /
            ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
    }
    return x;
}

double
sampleGamma(Rng &rng, double shape)
{
    AIWC_ASSERT(shape > 0.0, "gamma shape must be positive");
    if (shape < 1.0) {
        // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
        const double u = std::max(rng.uniform(), 1e-300);
        return sampleGamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
        double x = 0.0, v = 0.0;
        do {
            x = rng.gaussian();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = rng.uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (u > 0.0 &&
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return d * v;
        }
    }
}

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi)
{
    AIWC_ASSERT(hi >= lo, "uniform bounds inverted");
}

double
Uniform::sample(Rng &rng) const
{
    return rng.uniform(lo_, hi_);
}

Exponential::Exponential(double rate) : rate_(rate)
{
    AIWC_ASSERT(rate > 0.0, "exponential rate must be positive");
}

double
Exponential::sample(Rng &rng) const
{
    return rng.exponential(rate_);
}

LogNormal::LogNormal(double median, double sigma)
    : mu_(std::log(median)), sigma_(sigma)
{
    AIWC_ASSERT(median > 0.0, "log-normal median must be positive");
    AIWC_ASSERT(sigma >= 0.0, "log-normal sigma must be non-negative");
}

LogNormal
LogNormal::fromQuantiles(double q1, double v1, double q2, double v2)
{
    AIWC_ASSERT(q1 != q2, "quantile levels must differ");
    AIWC_ASSERT(v1 > 0.0 && v2 > 0.0, "quantile values must be positive");
    const double z1 = normalQuantile(q1);
    const double z2 = normalQuantile(q2);
    const double sigma = (std::log(v2) - std::log(v1)) / (z2 - z1);
    AIWC_ASSERT(sigma >= 0.0, "quantiles imply negative sigma");
    const double mu = std::log(v1) - sigma * z1;
    return LogNormal(std::exp(mu), sigma);
}

double
LogNormal::sample(Rng &rng) const
{
    return std::exp(mu_ + sigma_ * rng.gaussian());
}

double
LogNormal::mean() const
{
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double
LogNormal::quantile(double q) const
{
    return std::exp(mu_ + sigma_ * normalQuantile(q));
}

Pareto::Pareto(double x_min, double alpha) : x_min_(x_min), alpha_(alpha)
{
    AIWC_ASSERT(x_min > 0.0 && alpha > 0.0, "pareto parameters invalid");
}

double
Pareto::sample(Rng &rng) const
{
    const double u = std::max(1.0 - rng.uniform(), 1e-300);
    return x_min_ * std::pow(u, -1.0 / alpha_);
}

double
Pareto::mean() const
{
    if (alpha_ <= 1.0)
        return std::numeric_limits<double>::infinity();
    return alpha_ * x_min_ / (alpha_ - 1.0);
}

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale)
{
    AIWC_ASSERT(shape > 0.0 && scale > 0.0, "weibull parameters invalid");
}

double
Weibull::sample(Rng &rng) const
{
    const double u = std::max(1.0 - rng.uniform(), 1e-300);
    return scale_ * std::pow(-std::log(u), 1.0 / shape_);
}

double
Weibull::mean() const
{
    return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

Beta::Beta(double a, double b) : a_(a), b_(b)
{
    AIWC_ASSERT(a > 0.0 && b > 0.0, "beta parameters invalid");
}

Beta
Beta::fromMean(double mean, double kappa)
{
    AIWC_ASSERT(mean > 0.0 && mean < 1.0, "beta mean must be in (0,1)");
    AIWC_ASSERT(kappa > 0.0, "beta concentration must be positive");
    return Beta(mean * kappa, (1.0 - mean) * kappa);
}

double
Beta::sample(Rng &rng) const
{
    const double x = sampleGamma(rng, a_);
    const double y = sampleGamma(rng, b_);
    const double s = x + y;
    return s > 0.0 ? x / s : 0.5;
}

Mixture::Mixture(std::vector<std::pair<double, DistPtr>> components)
    : total_weight_(0.0)
{
    AIWC_ASSERT(!components.empty(), "mixture needs components");
    cumulative_.reserve(components.size());
    components_.reserve(components.size());
    for (auto &[w, d] : components) {
        AIWC_ASSERT(w >= 0.0, "mixture weight must be non-negative");
        AIWC_ASSERT(d != nullptr, "mixture component is null");
        total_weight_ += w;
        cumulative_.push_back(total_weight_);
        components_.push_back(std::move(d));
    }
    AIWC_ASSERT(total_weight_ > 0.0, "mixture has zero total weight");
}

double
Mixture::sample(Rng &rng) const
{
    const double u = rng.uniform() * total_weight_;
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    const auto idx = std::min<std::size_t>(
        static_cast<std::size_t>(it - cumulative_.begin()),
        components_.size() - 1);
    return components_[idx]->sample(rng);
}

double
Mixture::mean() const
{
    double acc = 0.0;
    double prev = 0.0;
    for (std::size_t i = 0; i < components_.size(); ++i) {
        const double w = cumulative_[i] - prev;
        prev = cumulative_[i];
        acc += w * components_[i]->mean();
    }
    return acc / total_weight_;
}

Truncated::Truncated(DistPtr inner, double lo, double hi)
    : inner_(std::move(inner)), lo_(lo), hi_(hi)
{
    AIWC_ASSERT(inner_ != nullptr, "truncated inner is null");
    AIWC_ASSERT(hi >= lo, "truncation bounds inverted");
}

double
Truncated::sample(Rng &rng) const
{
    constexpr int max_rejections = 64;
    for (int i = 0; i < max_rejections; ++i) {
        const double x = inner_->sample(rng);
        if (x >= lo_ && x <= hi_)
            return x;
    }
    return std::clamp(inner_->sample(rng), lo_, hi_);
}

double
Truncated::mean() const
{
    // Approximate: the clamped inner mean. Exact moments of arbitrary
    // truncations are not needed by any consumer.
    return std::clamp(inner_->mean(), lo_, hi_);
}

} // namespace aiwc::dist
