#include "aiwc/base/check.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace aiwc
{

namespace
{

/**
 * The installed handler. Plain global, not thread-local: the simulator
 * is single-threaded by design, and a production handler must be
 * visible to every thread anyway.
 */
CheckFailHandler &
handlerSlot()
{
    static CheckFailHandler handler;
    return handler;
}

} // namespace

std::string
CheckContext::describe() const
{
    std::ostringstream os;
    os << file << ":" << line << ": CHECK failed: " << expression;
    if (!message.empty())
        os << " (" << message << ")";
    return os.str();
}

CheckFailHandler
setCheckFailHandler(CheckFailHandler handler)
{
    return std::exchange(handlerSlot(), std::move(handler));
}

ScopedCheckFailHandler::ScopedCheckFailHandler()
    : ScopedCheckFailHandler(
          [](const CheckContext &context) -> void {
              throw ContractViolation(context);
          })
{
}

ScopedCheckFailHandler::ScopedCheckFailHandler(CheckFailHandler handler)
    : previous_(setCheckFailHandler(std::move(handler)))
{
}

ScopedCheckFailHandler::~ScopedCheckFailHandler()
{
    setCheckFailHandler(std::move(previous_));
}

namespace detail
{

void
checkFailed(const char *file, int line, const char *expr,
            std::string message)
{
    CheckContext context;
    context.file = file;
    context.line = line;
    context.expression = expr;
    context.message = std::move(message);

    if (const auto &handler = handlerSlot())
        handler(context);

    // No handler, or a handler that returned: a violated contract must
    // not be survivable.
    std::fprintf(stderr, "[aiwc:check] %s\n", context.describe().c_str());
    std::abort();
}

} // namespace detail
} // namespace aiwc
