#include "aiwc/base/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace aiwc
{

namespace
{

/**
 * The process log level lives in a function-local static rather than
 * at namespace scope: initialization is race-free per [stmt.dcl], and
 * access is gated through one accessor the linter can see.
 */
LogLevel &
levelSlot()
{
    static LogLevel level = LogLevel::Info;
    return level;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    levelSlot() = level;
}

LogLevel
logLevel()
{
    return levelSlot();
}

namespace detail
{

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[aiwc:%s] %s\n", tag, msg.c_str());
}

void
die(const char *tag, const std::string &msg, bool abrt)
{
    std::fprintf(stderr, "[aiwc:%s] %s\n", tag, msg.c_str());
    // LOG_FATAL's terminators: the message is already emitted and there is
    // no contract to raise, so ending the process here is the whole point.
    if (abrt)
        // aiwc-lint: allow(contract-abort) -- deliberate LOG_FATAL abort
        std::abort();
    // aiwc-lint: allow(contract-abort) -- deliberate LOG_FATAL exit
    std::exit(1);
}

} // namespace detail
} // namespace aiwc
