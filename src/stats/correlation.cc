#include "aiwc/stats/correlation.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "aiwc/base/check.hh"

namespace aiwc::stats
{

namespace
{

/** ln Gamma(x) via the Lanczos approximation. */
double
lnGamma(double x)
{
    static const double cof[6] = {
        76.18009172947146, -86.50532032941677, 24.01409824083091,
        -1.231739572450155, 0.1208650973866179e-2, -0.5395239384953e-5,
    };
    double y = x;
    double tmp = x + 5.5;
    tmp -= (x + 0.5) * std::log(tmp);
    double ser = 1.000000000190015;
    for (double c : cof)
        ser += c / ++y;
    return -tmp + std::log(2.5066282746310005 * ser / x);
}

/** Continued fraction for the incomplete beta function. */
double
betacf(double a, double b, double x)
{
    constexpr int max_it = 200;
    constexpr double eps = 3.0e-12;
    constexpr double fpmin = 1.0e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::abs(d) < fpmin)
        d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_it; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::abs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::abs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < eps)
            break;
    }
    return h;
}

/** Regularized incomplete beta I_x(a, b). */
double
incompleteBeta(double a, double b, double x)
{
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    const double bt = std::exp(lnGamma(a + b) - lnGamma(a) - lnGamma(b) +
                               a * std::log(x) + b * std::log(1.0 - x));
    if (x < (a + 1.0) / (a + b + 2.0))
        return bt * betacf(a, b, x) / a;
    return 1.0 - bt * betacf(b, a, 1.0 - x) / b;
}

/** Pearson r without the p-value machinery. */
double
pearsonR(std::span<const double> x, std::span<const double> y)
{
    const auto n = x.size();
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace

double
tTestPValue(double t, double df)
{
    if (df <= 0.0)
        return 1.0;
    const double x = df / (df + t * t);
    return incompleteBeta(df / 2.0, 0.5, x);
}

std::vector<double>
averageRanks(std::span<const double> xs)
{
    // Columnar rank transform: sort (value, index) pairs so the hot
    // comparisons run over a contiguous key array instead of gathering
    // through an index permutation, then sweep tie groups once. Ties
    // all carry the same key, so the unstable sort's ordering within a
    // group cannot affect the averaged rank.
    const std::size_t n = xs.size();
    std::vector<std::pair<double, std::uint32_t>> keyed(n);
    for (std::size_t i = 0; i < n; ++i)
        keyed[i] = {xs[i], static_cast<std::uint32_t>(i)};
    std::sort(keyed.begin(), keyed.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });

    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && keyed[j + 1].first == keyed[i].first)
            ++j;
        // Average 1-based rank across the tie group [i, j].
        const double avg = (static_cast<double>(i) +
                            static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[keyed[k].second] = avg;
        i = j + 1;
    }
    return ranks;
}

Correlation
pearson(std::span<const double> x, std::span<const double> y)
{
    AIWC_CHECK(x.size() == y.size(), "correlation input size mismatch");
    Correlation c;
    c.n = x.size();
    if (c.n < 3)
        return c;
    c.coefficient = pearsonR(x, y);
    const double r = std::clamp(c.coefficient, -0.9999999999, 0.9999999999);
    const double df = static_cast<double>(c.n) - 2.0;
    const double t = r * std::sqrt(df / (1.0 - r * r));
    c.p_value = tTestPValue(t, df);
    return c;
}

Correlation
spearman(std::span<const double> x, std::span<const double> y)
{
    AIWC_CHECK(x.size() == y.size(), "correlation input size mismatch");
    const auto rx = averageRanks(x);
    const auto ry = averageRanks(y);
    return pearson(rx, ry);
}

} // namespace aiwc::stats
