#include "aiwc/stats/share_curve.hh"

#include <algorithm>
#include <cmath>

#include "aiwc/base/check.hh"

namespace aiwc::stats
{

namespace
{
std::vector<double>
sortedDescending(std::span<const double> xs)
{
    std::vector<double> v(xs.begin(), xs.end());
    std::sort(v.begin(), v.end(), std::greater<>());
    return v;
}
} // namespace

double
topShare(std::span<const double> contributions, double top_fraction)
{
    AIWC_CHECK(top_fraction >= 0.0 && top_fraction <= 1.0,
                "top fraction out of [0,1]");
    if (contributions.empty())
        return 0.0;
    const auto v = sortedDescending(contributions);
    double total = 0.0;
    for (double x : v)
        total += x;
    if (total <= 0.0)
        return 0.0;
    const auto k = static_cast<std::size_t>(
        std::ceil(top_fraction * static_cast<double>(v.size())));
    double head = 0.0;
    for (std::size_t i = 0; i < k; ++i)
        head += v[i];
    return head / total;
}

std::vector<double>
shareCurve(std::span<const double> contributions)
{
    const auto v = sortedDescending(contributions);
    double total = 0.0;
    for (double x : v)
        total += x;
    std::vector<double> curve;
    curve.reserve(v.size());
    double acc = 0.0;
    for (double x : v) {
        acc += x;
        curve.push_back(total > 0.0 ? acc / total : 0.0);
    }
    return curve;
}

double
gini(std::span<const double> contributions)
{
    if (contributions.size() < 2)
        return 0.0;
    std::vector<double> v(contributions.begin(), contributions.end());
    std::sort(v.begin(), v.end());
    const auto n = static_cast<double>(v.size());
    double cum = 0.0, weighted = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        cum += v[i];
        weighted += static_cast<double>(i + 1) * v[i];
    }
    if (cum <= 0.0)
        return 0.0;
    return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

} // namespace aiwc::stats
