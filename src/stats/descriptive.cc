#include "aiwc/stats/descriptive.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "aiwc/base/check.hh"

namespace aiwc::stats
{

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

double
stddev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
covPercent(std::span<const double> xs)
{
    for (double x : xs)
        AIWC_DCHECK(std::isfinite(x), "non-finite CoV input: ", x);
    const double m = mean(xs);
    if (m == 0.0)
        return std::numeric_limits<double>::quiet_NaN();
    return 100.0 * stddev(xs) / std::abs(m);
}

double
percentileSorted(std::span<const double> sorted, double q)
{
    AIWC_CHECK(q >= 0.0 && q <= 1.0, "quantile out of [0,1]: ", q);
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted[0];
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double
percentile(std::vector<double> xs, double q)
{
    std::sort(xs.begin(), xs.end());
    return percentileSorted(xs, q);
}

double
sum(std::span<const double> xs)
{
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc;
}

BoxStats
BoxStats::from(std::vector<double> xs)
{
    BoxStats b;
    if (xs.empty())
        return b;
    std::sort(xs.begin(), xs.end());
    b.n = xs.size();
    b.min = xs.front();
    b.max = xs.back();
    b.q1 = percentileSorted(xs, 0.25);
    b.median = percentileSorted(xs, 0.50);
    b.q3 = percentileSorted(xs, 0.75);
    const double iqr = b.q3 - b.q1;
    // Whiskers extend to the most extreme points inside 1.5 IQR.
    const double lo_fence = b.q1 - 1.5 * iqr;
    const double hi_fence = b.q3 + 1.5 * iqr;
    b.whisker_lo = b.min;
    for (double x : xs) {
        if (x >= lo_fence) {
            b.whisker_lo = x;
            break;
        }
    }
    b.whisker_hi = b.max;
    for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
        if (*it <= hi_fence) {
            b.whisker_hi = *it;
            break;
        }
    }
    return b;
}

RunningSummary::RawState
RunningSummary::rawState() const
{
    RawState state;
    state.count = n_;
    if (n_ == 0)
        return state;  // min_/max_ are the +-inf sentinels; hide them
    state.min = min_;
    state.max = max_;
    state.sum = sum_;
    state.sum_sq = sum_sq_;
    return state;
}

RunningSummary
RunningSummary::fromRawState(const RawState &state)
{
    RunningSummary s;
    if (state.count == 0)
        return s;
    AIWC_CHECK(std::isfinite(state.min) && std::isfinite(state.max) &&
                   std::isfinite(state.sum) &&
                   std::isfinite(state.sum_sq) && state.min <= state.max,
               "inconsistent RunningSummary raw state");
    s.n_ = state.count;
    s.min_ = state.min;
    s.max_ = state.max;
    s.sum_ = state.sum;
    s.sum_sq_ = state.sum_sq;
    return s;
}

RunningSummary
RunningSummary::fromMoments(std::size_t count, double min, double mean,
                            double max, double stddev)
{
    AIWC_CHECK(min <= mean && mean <= max,
                "inconsistent moments: min ", min, " mean ", mean,
                " max ", max);
    RunningSummary s;
    if (count == 0)
        return s;
    s.n_ = count;
    s.min_ = min;
    s.max_ = max;
    s.sum_ = mean * static_cast<double>(count);
    s.sum_sq_ = static_cast<double>(count) *
                (stddev * stddev + mean * mean);
    return s;
}

void
RunningSummary::add(double x)
{
    AIWC_DCHECK(std::isfinite(x), "non-finite sample: ", x);
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
    sum_sq_ += x * x;
}

void
RunningSummary::merge(const RunningSummary &other)
{
    if (other.n_ == 0)
        return;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
}

double
RunningSummary::stddev() const
{
    if (n_ < 2)
        return 0.0;
    const double m = mean();
    const double var = sum_sq_ / static_cast<double>(n_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
RunningSummary::covPercent() const
{
    const double m = mean();
    if (m == 0.0)
        return std::numeric_limits<double>::quiet_NaN();
    return 100.0 * stddev() / std::abs(m);
}

} // namespace aiwc::stats
