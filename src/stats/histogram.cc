#include "aiwc/stats/histogram.hh"

#include <algorithm>

#include "aiwc/base/check.hh"

namespace aiwc::stats
{

Histogram::Histogram(std::size_t bins, double lo, double hi)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0)
{
    AIWC_CHECK(bins >= 1, "histogram needs at least one bin");
    AIWC_CHECK(hi > lo, "histogram range is empty");
}

void
Histogram::add(double x)
{
    add(x, 1.0);
}

void
Histogram::add(double x, double weight)
{
    auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    counts_[static_cast<std::size_t>(idx)] += weight;
    total_ += weight;
}

void
Histogram::merge(const Histogram &other)
{
    AIWC_CHECK(counts_.size() == other.counts_.size() &&
                   lo_ == other.lo_ && hi_ == other.hi_,
               "merging histograms with different bin geometry: ",
               counts_.size(), " bins over [", lo_, ", ", hi_,
               ") vs ", other.counts_.size(), " bins over [", other.lo_,
               ", ", other.hi_, ")");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::binHigh(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i + 1);
}

double
Histogram::fraction(std::size_t i) const
{
    return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

std::size_t
Histogram::modeBin() const
{
    return static_cast<std::size_t>(
        std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

} // namespace aiwc::stats
