#include "aiwc/stats/ecdf.hh"

#include <algorithm>
#include <cmath>

#include "aiwc/common/check.hh"
#include "aiwc/stats/descriptive.hh"

namespace aiwc::stats
{

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample)
    : sorted_(std::move(sample))
{
    std::sort(sorted_.begin(), sorted_.end());
}

double
EmpiricalCdf::at(double x) const
{
    if (sorted_.empty())
        return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    return percentileSorted(sorted_, q);
}

std::vector<std::pair<double, double>>
EmpiricalCdf::curve(int points) const
{
    AIWC_CHECK(points >= 2, "curve needs at least two points");
    std::vector<std::pair<double, double>> out;
    out.reserve(static_cast<std::size_t>(points));
    for (int i = 0; i < points; ++i) {
        const double q = static_cast<double>(i) / (points - 1);
        out.emplace_back(quantile(q), q);
    }
    return out;
}

double
EmpiricalCdf::ksDistance(const EmpiricalCdf &other) const
{
    if (empty() || other.empty())
        return empty() == other.empty() ? 0.0 : 1.0;
    double d = 0.0;
    for (double x : sorted_)
        d = std::max(d, std::abs(at(x) - other.at(x)));
    for (double x : other.sorted_)
        d = std::max(d, std::abs(at(x) - other.at(x)));
    return d;
}

} // namespace aiwc::stats
