#include "aiwc/stats/ecdf.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "aiwc/base/check.hh"
#include "aiwc/stats/descriptive.hh"

namespace aiwc::stats
{

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample)
    : sorted_(std::move(sample))
{
    std::sort(sorted_.begin(), sorted_.end());
}

EmpiricalCdf
EmpiricalCdf::fromQuantileFunction(
    const std::function<double(double)> &fn, int points)
{
    AIWC_CHECK(points >= 2,
               "fromQuantileFunction needs at least two levels");
    std::vector<double> sample;
    sample.reserve(static_cast<std::size_t>(points));
    for (int i = 0; i < points; ++i) {
        const double q = static_cast<double>(i) / (points - 1);
        double v = fn(q);
        if (std::isnan(v)) {
            AIWC_CHECK(i == 0, "quantile function returned NaN at level ",
                       q, " after returning values below it");
            return EmpiricalCdf{};
        }
        if (!sample.empty())
            v = std::max(v, sample.back());
        sample.push_back(v);
    }
    return EmpiricalCdf(std::move(sample));
}

double
EmpiricalCdf::at(double x) const
{
    if (sorted_.empty())
        return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double
EmpiricalCdf::atLeft(double x) const
{
    if (sorted_.empty())
        return 0.0;
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    AIWC_CHECK(q >= 0.0 && q <= 1.0,
               "quantile level must lie in [0, 1], got ", q);
    if (sorted_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return percentileSorted(sorted_, q);
}

std::vector<std::pair<double, double>>
EmpiricalCdf::curve(int points) const
{
    AIWC_CHECK(points >= 2, "curve needs at least two points");
    AIWC_CHECK(!empty(), "curve of an empty CDF is undefined");
    std::vector<std::pair<double, double>> out;
    out.reserve(static_cast<std::size_t>(points));
    for (int i = 0; i < points; ++i) {
        const double q = static_cast<double>(i) / (points - 1);
        out.emplace_back(quantile(q), q);
    }
    return out;
}

double
EmpiricalCdf::ksDistance(const EmpiricalCdf &other) const
{
    if (empty() || other.empty())
        return empty() == other.empty() ? 0.0 : 1.0;
    // The supremum gap between two right-continuous step functions is
    // attained either at a jump (compare the values) or just before
    // one (compare the left limits). Checking both sides at every jump
    // point of either sample keeps the statistic exact when the
    // samples share support points.
    double d = 0.0;
    for (double x : sorted_) {
        d = std::max(d, std::abs(at(x) - other.at(x)));
        d = std::max(d, std::abs(atLeft(x) - other.atLeft(x)));
    }
    for (double x : other.sorted_) {
        d = std::max(d, std::abs(at(x) - other.at(x)));
        d = std::max(d, std::abs(atLeft(x) - other.atLeft(x)));
    }
    return d;
}

} // namespace aiwc::stats
