#include "aiwc/stats/kernels.hh"

#include "aiwc/base/check.hh"
#include "aiwc/common/parallel.hh"

namespace aiwc::stats
{

std::vector<double>
gather(std::span<const double> col, std::span<const std::uint32_t> idx)
{
    std::vector<double> out(idx.size());
    parallelFor(globalPool(), idx.size(),
                [&](std::size_t i) { out[i] = col[idx[i]]; });
    return out;
}

std::vector<double>
gatherScaled(std::span<const double> col,
             std::span<const std::uint32_t> idx, double scale)
{
    std::vector<double> out(idx.size());
    parallelFor(globalPool(), idx.size(),
                [&](std::size_t i) { out[i] = scale * col[idx[i]]; });
    return out;
}

std::vector<double>
gatherDivided(std::span<const double> col,
              std::span<const std::uint32_t> idx, double divisor)
{
    std::vector<double> out(idx.size());
    parallelFor(globalPool(), idx.size(),
                [&](std::size_t i) { out[i] = col[idx[i]] / divisor; });
    return out;
}

BucketPartition
partitionByKey(std::span<const std::uint32_t> idx,
               std::span<const std::uint32_t> key, std::size_t buckets)
{
    BucketPartition out;
    out.offsets.assign(buckets + 1, 0);
    for (const std::uint32_t r : idx) {
        AIWC_CHECK(key[r] < buckets, "partition key ", key[r],
                   " out of range (", buckets, " buckets)");
        ++out.offsets[key[r] + 1];
    }
    for (std::size_t k = 1; k <= buckets; ++k)
        out.offsets[k] += out.offsets[k - 1];

    out.rows.resize(idx.size());
    std::vector<std::uint32_t> cursor(out.offsets.begin(),
                                      out.offsets.end() - 1);
    for (const std::uint32_t r : idx)
        out.rows[cursor[key[r]]++] = r;
    return out;
}

} // namespace aiwc::stats
