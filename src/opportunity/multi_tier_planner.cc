#include "aiwc/opportunity/multi_tier_planner.hh"

#include <algorithm>

#include "aiwc/base/logging.hh"

namespace aiwc::opportunity
{

double
MultiTierPlanner::jobSlowdown(const core::JobRecord &job) const
{
    // Amdahl over the GPU-bound share: only the part of wall time the
    // job actually leans on the GPU stretches by 1/speed. Mean SM
    // utilization is our proxy for that share.
    const double gpu_bound =
        std::clamp(job.meanUtilization(Resource::Sm), 0.0, 1.0);
    return 1.0 + gpu_bound * (1.0 / economy_speed_ - 1.0);
}

bool
MultiTierPlanner::shouldShift(const core::JobRecord &job) const
{
    const Lifecycle c = classifier_.classify(job);
    return c == Lifecycle::Exploratory || c == Lifecycle::Development ||
           c == Lifecycle::Ide;
}

MultiTierPlan
MultiTierPlanner::plan(const core::Dataset &dataset) const
{
    AIWC_ASSERT(economy_speed_ > 0.0 && economy_speed_ <= 1.0,
                "economy speed must be in (0, 1]");
    MultiTierPlan out;
    out.economy_speed = economy_speed_;
    out.economy_cost = economy_cost_;

    double total_hours = 0.0, shifted_hours = 0.0;
    double slow_sum = 0.0;
    std::size_t shifted = 0;
    for (const core::JobRecord *job : dataset.gpuJobs()) {
        const double hours = job->gpuHours();
        total_hours += hours;
        if (!shouldShift(*job))
            continue;
        shifted_hours += hours;
        slow_sum += jobSlowdown(*job);
        ++shifted;
        out.shifted_jobs[static_cast<std::size_t>(
            classifier_.classify(*job))] += 1.0;
    }
    if (total_hours <= 0.0)
        return out;

    out.shifted_hour_fraction = shifted_hours / total_hours;
    out.mean_shifted_slowdown =
        shifted > 0 ? slow_sum / static_cast<double>(shifted) : 1.0;

    // Equal delivered capacity: premium hours stay premium; shifted
    // hours need (slowdown x hours) of economy capacity, at the
    // economy price. Baseline: everything premium at unit price.
    const double premium_hours = total_hours - shifted_hours;
    const double economy_capacity =
        shifted_hours * out.mean_shifted_slowdown;
    const double tiered_cost =
        premium_hours + economy_capacity * economy_cost_;
    out.cost_saving_fraction = 1.0 - tiered_cost / total_hours;
    return out;
}

} // namespace aiwc::opportunity
