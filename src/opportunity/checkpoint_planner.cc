#include "aiwc/opportunity/checkpoint_planner.hh"

#include <algorithm>
#include <cmath>

#include "aiwc/base/logging.hh"

namespace aiwc::opportunity
{

bool
CheckpointPlanner::losesState(const core::JobRecord &job)
{
    switch (job.terminal) {
      case TerminalState::Failed:
      case TerminalState::TimedOut:
      case TerminalState::NodeFailure:
        return true;
      case TerminalState::Completed:
      case TerminalState::Cancelled:
        // Completed jobs persisted their result; cancellations are a
        // user's judgement that the state is not worth keeping.
        return false;
    }
    return false;
}

CheckpointPlan
CheckpointPlanner::evaluate(const core::Dataset &dataset,
                            double interval_s,
                            double write_cost_s) const
{
    AIWC_ASSERT(interval_s > 0.0, "checkpoint interval must be positive");
    AIWC_ASSERT(write_cost_s >= 0.0, "write cost must be non-negative");

    CheckpointPlan plan;
    plan.interval_s = interval_s;
    plan.write_cost_s = write_cost_s;

    double total_hours = 0.0;
    for (const core::JobRecord *job : dataset.gpuJobs()) {
        const double runtime = job->runTime();
        const double gpus = static_cast<double>(job->gpus);
        total_hours += job->gpuHours();

        // Every job pays the write overhead for each checkpoint taken;
        // a checkpoint falling exactly at job end is never written.
        const double checkpoints =
            std::max(std::ceil(runtime / interval_s) - 1.0, 0.0);
        plan.overhead_hours +=
            checkpoints * write_cost_s * gpus / 3600.0;

        if (!losesState(*job))
            continue;
        // Without checkpointing, the whole run's state evaporates.
        plan.lost_hours_baseline += job->gpuHours();
        // With it, only work since the last checkpoint is lost —
        // interval/2 in expectation, capped by the runtime itself.
        const double residual = std::min(runtime, interval_s / 2.0);
        plan.lost_hours_with_ckpt += residual * gpus / 3600.0;
    }

    if (total_hours > 0.0) {
        const double recovered =
            plan.lost_hours_baseline - plan.lost_hours_with_ckpt;
        plan.net_saving_fraction =
            (recovered - plan.overhead_hours) / total_hours;
    }
    return plan;
}

std::vector<CheckpointPlan>
CheckpointPlanner::sweep(const core::Dataset &dataset,
                         const std::vector<double> &intervals_s,
                         double write_cost_s) const
{
    std::vector<CheckpointPlan> plans;
    plans.reserve(intervals_s.size());
    for (double interval : intervals_s)
        plans.push_back(evaluate(dataset, interval, write_cost_s));
    return plans;
}

} // namespace aiwc::opportunity
