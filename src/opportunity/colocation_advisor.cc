#include "aiwc/opportunity/colocation_advisor.hh"

#include <algorithm>

namespace aiwc::opportunity
{

bool
InterferenceModel::fits(const core::JobRecord &a,
                        const core::JobRecord &b) const
{
    const double combined =
        a.meanUtilization(Resource::MemorySize) +
        b.meanUtilization(Resource::MemorySize);
    return combined <= memsize_limit_;
}

double
InterferenceModel::pairSlowdown(const core::JobRecord &a,
                                const core::JobRecord &b) const
{
    const double sm =
        a.meanUtilization(Resource::Sm) + b.meanUtilization(Resource::Sm);
    const double membw = a.meanUtilization(Resource::MemoryBw) +
                         b.meanUtilization(Resource::MemoryBw);
    double slowdown = 1.0;
    if (sm > 1.0)
        slowdown += sm_alpha_ * (sm - 1.0);
    if (membw > 1.0)
        slowdown += membw_alpha_ * (membw - 1.0);
    // Mild baseline cost of sharing (context switching, cache churn).
    slowdown += 0.01;
    return slowdown;
}

ColocationReport
ColocationAdvisor::analyze(const core::Dataset &dataset) const
{
    ColocationReport report;

    // Candidates: single-GPU jobs, replayed in start order.
    auto jobs = dataset.gpuJobsWhere(
        [](const core::JobRecord &j) { return j.gpus == 1; });
    std::sort(jobs.begin(), jobs.end(),
              [](const core::JobRecord *a, const core::JobRecord *b) {
                  return a->start_time < b->start_time;
              });
    report.gpu_jobs = jobs.size();
    if (jobs.empty())
        return report;

    struct Resident
    {
        const core::JobRecord *job;
        bool paired;
    };
    std::vector<Resident> running;
    std::vector<double> slowdowns;
    double saved_hours = 0.0, total_hours = 0.0;
    std::size_t paired = 0;

    for (const core::JobRecord *job : jobs) {
        total_hours += job->gpuHours();
        // Retire finished residents.
        std::erase_if(running, [&](const Resident &r) {
            return r.job->end_time <= job->start_time;
        });

        // Find the best (lowest-slowdown) unpaired partner.
        Resident *best = nullptr;
        double best_slowdown = max_slowdown_;
        for (auto &r : running) {
            if (r.paired || !model_.fits(*r.job, *job))
                continue;
            const double s = model_.pairSlowdown(*r.job, *job);
            if (s <= best_slowdown) {
                best = &r;
                best_slowdown = s;
            }
        }
        if (best) {
            best->paired = true;
            paired += 2;
            slowdowns.push_back(best_slowdown);
            // The overlap runs on one GPU instead of two.
            const double overlap =
                std::min(best->job->end_time, job->end_time) -
                job->start_time;
            saved_hours += std::max(overlap, 0.0) / 3600.0;
            // The arriving job rides along; it does not join the pool.
        } else {
            running.push_back(Resident{job, false});
        }
    }

    report.paired_job_fraction =
        static_cast<double>(paired) / static_cast<double>(jobs.size());
    report.gpu_hours_saved_fraction =
        total_hours > 0.0 ? saved_hours / total_hours : 0.0;
    if (!slowdowns.empty()) {
        double acc = 0.0;
        for (double s : slowdowns)
            acc += s;
        report.mean_pair_slowdown =
            acc / static_cast<double>(slowdowns.size());
    }
    report.pair_slowdown = stats::EmpiricalCdf(std::move(slowdowns));
    return report;
}

} // namespace aiwc::opportunity
