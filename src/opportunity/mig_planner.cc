#include "aiwc/opportunity/mig_planner.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "aiwc/base/logging.hh"

namespace aiwc::opportunity
{

int
MigPlanner::slicesFor(const core::JobRecord &job) const
{
    // Jobs that ever saturate compute or memory need the whole GPU;
    // slicing them would change their behaviour.
    if (job.maxUtilization(Resource::Sm) >= 0.995 ||
        job.maxUtilization(Resource::MemorySize) >= 0.995) {
        return slices_per_gpu_;
    }
    const double demand =
        headroom_ * std::max(job.meanUtilization(Resource::Sm),
                             job.meanUtilization(Resource::MemorySize));
    const int slices = static_cast<int>(
        std::ceil(demand * static_cast<double>(slices_per_gpu_)));
    return std::clamp(slices, 1, slices_per_gpu_);
}

MigPlan
MigPlanner::plan(const core::Dataset &dataset) const
{
    AIWC_ASSERT(slices_per_gpu_ >= 1, "need at least one slice");
    MigPlan out;
    out.slices_per_gpu = slices_per_gpu_;

    // Candidates: single-GPU jobs in start order.
    auto jobs = dataset.gpuJobsWhere(
        [](const core::JobRecord &j) { return j.gpus == 1; });
    std::sort(jobs.begin(), jobs.end(),
              [](const core::JobRecord *a, const core::JobRecord *b) {
                  return a->start_time < b->start_time;
              });
    out.jobs = jobs.size();
    if (jobs.empty())
        return out;

    struct Resident
    {
        Seconds end;
        int gpu;
        int slices;
    };
    struct GpuState
    {
        int free = 0;
        int resident_jobs = 0;
    };

    std::vector<Resident> running;
    std::vector<GpuState> gpus;
    int exclusive_running = 0;
    double slice_sum = 0.0;

    auto retire = [&](Seconds now) {
        for (auto it = running.begin(); it != running.end();) {
            if (it->end <= now) {
                gpus[static_cast<std::size_t>(it->gpu)].free +=
                    it->slices;
                gpus[static_cast<std::size_t>(it->gpu)].resident_jobs -=
                    1;
                --exclusive_running;
                it = running.erase(it);
            } else {
                ++it;
            }
        }
    };

    for (const core::JobRecord *job : jobs) {
        retire(job->start_time);
        const int need = slicesFor(*job);
        slice_sum += need;
        if (need == slices_per_gpu_)
            out.full_gpu_jobs += 1.0;

        // Best-fit: tightest GPU that can host the slices.
        int best = -1;
        for (std::size_t g = 0; g < gpus.size(); ++g) {
            if (gpus[g].free >= need &&
                (best < 0 ||
                 gpus[g].free < gpus[static_cast<std::size_t>(best)]
                                     .free)) {
                best = static_cast<int>(g);
            }
        }
        if (best < 0) {
            gpus.push_back(GpuState{slices_per_gpu_, 0});
            best = static_cast<int>(gpus.size()) - 1;
        }
        auto &gpu = gpus[static_cast<std::size_t>(best)];
        if (gpu.resident_jobs > 0) {
            // Slicing an occupied GPU differently = a repartition,
            // which today needs idle time and manual resets.
            ++out.repartition_events;
        }
        gpu.free -= need;
        gpu.resident_jobs += 1;
        running.push_back(Resident{job->end_time, best, need});
        ++exclusive_running;

        int in_use = 0;
        for (const auto &g : gpus)
            if (g.resident_jobs > 0)
                ++in_use;
        out.peak_gpus_mig = std::max(out.peak_gpus_mig, in_use);
        out.peak_gpus_exclusive =
            std::max(out.peak_gpus_exclusive, exclusive_running);
    }

    out.mean_slices = slice_sum / static_cast<double>(jobs.size());
    out.full_gpu_jobs /= static_cast<double>(jobs.size());
    if (out.peak_gpus_exclusive > 0) {
        out.gpu_demand_reduction =
            1.0 - static_cast<double>(out.peak_gpus_mig) /
                      static_cast<double>(out.peak_gpus_exclusive);
    }
    out.reconfig_overhead_hours =
        static_cast<double>(out.repartition_events) * reconfig_seconds_ /
        3600.0;
    return out;
}

} // namespace aiwc::opportunity
