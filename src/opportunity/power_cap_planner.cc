#include "aiwc/opportunity/power_cap_planner.hh"

#include <algorithm>

#include "aiwc/base/logging.hh"

namespace aiwc::opportunity
{

double
PowerCapPlanner::jobSlowdown(const core::JobRecord &job,
                             double cap_watts) const
{
    AIWC_ASSERT(cap_watts > 0.0, "cap must be positive");
    const double avg = job.meanPowerWatts();
    const double mx = job.maxPowerWatts();
    if (avg > cap_watts) {
        // Persistent throttling: performance tracks delivered power.
        return avg / cap_watts;
    }
    if (mx > cap_watts) {
        // Burst-only throttling: penalize by the overshoot depth.
        const double overshoot =
            (mx - cap_watts) / std::max(tdp_watts_ - cap_watts, 1.0);
        return 1.0 + burst_penalty_ * std::min(overshoot, 1.0);
    }
    return 1.0;
}

std::vector<PowerCapPlan>
PowerCapPlanner::plan(const core::Dataset &dataset,
                      const std::vector<double> &caps) const
{
    std::vector<PowerCapPlan> plans;
    const auto jobs = dataset.gpuJobs();
    for (double cap : caps) {
        PowerCapPlan p;
        p.cap_watts = cap;
        p.gpu_multiplier = tdp_watts_ / cap;
        if (jobs.empty()) {
            plans.push_back(p);
            continue;
        }
        double unimpacted = 0.0, by_avg = 0.0;
        double slow_sum = 0.0, w_slow_sum = 0.0, w_sum = 0.0;
        for (const core::JobRecord *job : jobs) {
            const double s = jobSlowdown(*job, cap);
            slow_sum += s;
            const double w = std::max(job->gpuHours(), 1e-9);
            w_slow_sum += s * w;
            w_sum += w;
            if (job->maxPowerWatts() <= cap)
                unimpacted += 1.0;
            if (job->meanPowerWatts() > cap)
                by_avg += 1.0;
        }
        const auto n = static_cast<double>(jobs.size());
        p.unimpacted = unimpacted / n;
        p.impacted_by_avg = by_avg / n;
        p.mean_slowdown = slow_sum / n;
        p.weighted_slowdown = w_slow_sum / w_sum;
        // More GPUs at the same power, each job slowed: net gain.
        p.throughput_gain = p.gpu_multiplier / p.weighted_slowdown - 1.0;
        plans.push_back(p);
    }
    return plans;
}

} // namespace aiwc::opportunity
