#include "aiwc/obs/metrics.hh"

#include <bit>
#include <ostream>

#include "aiwc/base/check.hh"

namespace aiwc::obs
{

void
Histogram::observe(std::uint64_t v)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // bit_width(0) == 0, bit_width(1) == 1, ... — bucket b holds the
    // values of bit width b, so the bucket index never exceeds 64.
    const auto b = static_cast<std::size_t>(std::bit_width(v));
    buckets_[b].fetch_add(1, std::memory_order_relaxed);

    // Lock-free extrema: retry only while another thread holds a more
    // extreme value, which converges immediately in practice.
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (v < seen &&
           !min_.compare_exchange_weak(seen, v,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::min() const
{
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == ~0ull ? 0 : m;
}

std::uint64_t
Histogram::quantile(double q) const
{
    AIWC_CHECK(q >= 0.0 && q <= 1.0, "quantile level out of range: ", q);
    const std::uint64_t n = count();
    if (n == 0)
        return 0;
    // Rank of the q-th sample (1-based), then walk the buckets.
    const auto rank = static_cast<std::uint64_t>(q * (n - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < num_buckets; ++b) {
        seen += buckets_[b].load(std::memory_order_relaxed);
        if (seen >= rank) {
            // Upper bound of bucket b: values of bit width b.
            return b == 0 ? 0
                          : (b >= 64 ? ~0ull : (1ull << b) - 1);
        }
    }
    return max();
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~0ull, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Entry &
MetricsRegistry::lookup(const std::string &name, Kind kind)
{
    AIWC_CHECK(!name.empty(), "metric needs a name");
    MutexLock lock(mutex_);
    auto [it, inserted] = metrics_.try_emplace(name);
    Entry &entry = it->second;
    if (inserted) {
        entry.kind = kind;
        switch (kind) {
          case Kind::Counter:
            entry.counter = std::make_unique<Counter>();
            break;
          case Kind::Gauge:
            entry.gauge = std::make_unique<Gauge>();
            break;
          case Kind::Histogram:
            entry.histogram = std::make_unique<Histogram>();
            break;
        }
    } else {
        AIWC_CHECK(entry.kind == kind,
                   "metric '", name, "' re-registered as a different kind");
    }
    return entry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return *lookup(name, Kind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return *lookup(name, Kind::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return *lookup(name, Kind::Histogram).histogram;
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    MutexLock lock(mutex_);
    std::vector<MetricSample> samples;
    samples.reserve(metrics_.size());
    for (const auto &[name, entry] : metrics_) {
        MetricSample s;
        s.name = name;
        switch (entry.kind) {
          case Kind::Counter:
            s.kind = MetricSample::Kind::Counter;
            s.value = static_cast<std::int64_t>(entry.counter->value());
            break;
          case Kind::Gauge:
            s.kind = MetricSample::Kind::Gauge;
            s.value = entry.gauge->value();
            break;
          case Kind::Histogram: {
            const Histogram &h = *entry.histogram;
            s.kind = MetricSample::Kind::Histogram;
            s.count = h.count();
            s.sum = h.sum();
            s.min = h.min();
            s.max = h.max();
            s.p50 = h.quantile(0.5);
            s.p90 = h.quantile(0.9);
            s.p99 = h.quantile(0.99);
            break;
          }
        }
        samples.push_back(std::move(s));
    }
    return samples;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    const auto samples = snapshot();
    const auto writeSection = [&](const char *title,
                                  MetricSample::Kind kind) {
        os << '"' << title << "\":{";
        bool first = true;
        for (const MetricSample &s : samples) {
            if (s.kind != kind)
                continue;
            if (!first)
                os << ',';
            first = false;
            os << '"' << s.name << "\":";
            if (kind == MetricSample::Kind::Histogram) {
                os << "{\"count\":" << s.count << ",\"sum\":" << s.sum
                   << ",\"min\":" << s.min << ",\"max\":" << s.max
                   << ",\"p50\":" << s.p50 << ",\"p90\":" << s.p90
                   << ",\"p99\":" << s.p99 << '}';
            } else {
                os << s.value;
            }
        }
        os << '}';
    };
    os << '{';
    writeSection("counters", MetricSample::Kind::Counter);
    os << ',';
    writeSection("gauges", MetricSample::Kind::Gauge);
    os << ',';
    writeSection("histograms", MetricSample::Kind::Histogram);
    os << '}';
}

void
MetricsRegistry::resetValues()
{
    MutexLock lock(mutex_);
    for (auto &[name, entry] : metrics_) {
        switch (entry.kind) {
          case Kind::Counter: entry.counter->reset(); break;
          case Kind::Gauge: entry.gauge->reset(); break;
          case Kind::Histogram: entry.histogram->reset(); break;
        }
    }
}

} // namespace aiwc::obs
