#include "aiwc/obs/trace.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "aiwc/base/logging.hh"
#include "aiwc/base/mutex.hh"
#include "aiwc/base/thread_annotations.hh"

namespace aiwc::obs
{

namespace
{

/** One complete event, timestamps in ns since the trace epoch. */
struct TraceEvent
{
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
};

/**
 * Per-thread event buffer. Owned by the collector (not the thread), so
 * events survive pool workers joining on setGlobalThreadCount(); the
 * mutex is uncontended in steady state — only the flush path ever
 * competes with the owning thread.
 */
struct ThreadBuffer
{
    Mutex mutex;
    std::vector<TraceEvent> events AIWC_GUARDED_BY(mutex);
    // Written once under the collector's registry mutex before the
    // buffer pointer escapes to its owning thread; immutable after.
    std::uint32_t tid = 0;
};

class TraceCollector
{
  public:
    static TraceCollector &
    instance()
    {
        static TraceCollector collector;
        return collector;
    }

    ThreadBuffer &
    local()
    {
        thread_local ThreadBuffer *buffer = nullptr;
        if (buffer == nullptr) {
            MutexLock lock(mutex_);
            auto owned = std::make_unique<ThreadBuffer>();
            owned->tid = static_cast<std::uint32_t>(buffers_.size());
            buffer = owned.get();
            buffers_.push_back(std::move(owned));
        }
        return *buffer;
    }

    std::vector<TraceEvent>
    collect() const
    {
        MutexLock lock(mutex_);
        std::vector<TraceEvent> all;
        for (const auto &buffer : buffers_) {
            MutexLock buffer_lock(buffer->mutex);
            all.insert(all.end(), buffer->events.begin(),
                       buffer->events.end());
        }
        return all;
    }

    void
    clear()
    {
        MutexLock lock(mutex_);
        for (const auto &buffer : buffers_) {
            MutexLock buffer_lock(buffer->mutex);
            buffer->events.clear();
        }
    }

    std::size_t
    eventCount() const
    {
        MutexLock lock(mutex_);
        std::size_t n = 0;
        for (const auto &buffer : buffers_) {
            MutexLock buffer_lock(buffer->mutex);
            n += buffer->events.size();
        }
        return n;
    }

  private:
    mutable Mutex mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_
        AIWC_GUARDED_BY(mutex_);
};

// aiwc-lint: allow(mutable-global) -- trace arm/disarm flag; obs/ is observability-only and barred from influencing results
std::atomic<bool> trace_on{false};
// aiwc-lint: allow(mutable-global) -- one-shot env-init latch for tracing
std::once_flag env_once;
// aiwc-lint: allow(mutable-global) -- trace output path, written once under env_once before any span is recorded
std::string env_path;

void
flushEnvTrace()
{
    if (!env_path.empty())
        writeTraceFile(env_path);
}

void
initFromEnv()
{
    const char *path = std::getenv("AIWC_TRACE");
    if (path == nullptr || *path == '\0')
        return;
    env_path = path;
    trace_on.store(true, std::memory_order_relaxed);
    // Touch the collector before registering the atexit hook so its
    // static outlives the hook (reverse destruction order).
    TraceCollector::instance();
    std::atexit(flushEnvTrace);
}

/** Minimal JSON string escape for span names. */
void
writeEscaped(std::ostream &os, const std::string &s)
{
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                break;  // drop other control characters
            os << c;
        }
    }
}

} // namespace

bool
traceEnabled()
{
    std::call_once(env_once, initFromEnv);
    return trace_on.load(std::memory_order_relaxed);
}

void
setTraceEnabled(bool on)
{
    std::call_once(env_once, initFromEnv);
    if (on)
        TraceCollector::instance();
    trace_on.store(on, std::memory_order_relaxed);
}

void
clearTraceEvents()
{
    TraceCollector::instance().clear();
}

std::size_t
traceEventCount()
{
    return TraceCollector::instance().eventCount();
}

std::uint64_t
traceNowNs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now() - epoch)
            .count());
}

void
writeTrace(std::ostream &os)
{
    auto events = TraceCollector::instance().collect();
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.start_ns != b.start_ns)
                      return a.start_ns < b.start_ns;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.dur_ns > b.dur_ns;  // parents before children
              });
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : events) {
        if (!first)
            os << ',';
        first = false;
        // Chrome's ts/dur are microseconds; keep ns precision with a
        // fixed three-decimal fraction (also keeps output byte-stable).
        const std::uint64_t ts_us = e.start_ns / 1000;
        const std::uint64_t ts_frac = e.start_ns % 1000;
        const std::uint64_t dur_us = e.dur_ns / 1000;
        const std::uint64_t dur_frac = e.dur_ns % 1000;
        os << "{\"name\":\"";
        writeEscaped(os, e.name);
        os << "\",\"cat\":\"aiwc\",\"ph\":\"X\",\"ts\":" << ts_us << '.'
           << ts_frac / 100 << (ts_frac / 10) % 10 << ts_frac % 10
           << ",\"dur\":" << dur_us << '.' << dur_frac / 100
           << (dur_frac / 10) % 10 << dur_frac % 10
           << ",\"pid\":1,\"tid\":" << e.tid << '}';
    }
    os << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool
writeTraceFile(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open trace output '", path, "'");
        return false;
    }
    writeTrace(os);
    os.flush();
    if (!os) {
        warn("failed writing trace output '", path, "'");
        return false;
    }
    inform("wrote Chrome trace to ", path, " (load in chrome://tracing",
           " or https://ui.perfetto.dev)");
    return true;
}

namespace detail
{

void
recordSpan(std::string name, std::uint64_t start_ns, std::uint64_t dur_ns)
{
    ThreadBuffer &buffer = TraceCollector::instance().local();
    MutexLock lock(buffer.mutex);
    buffer.events.push_back(
        TraceEvent{std::move(name), start_ns, dur_ns, buffer.tid});
}

} // namespace detail

namespace
{

/** Process CPU time in ns (all threads, so pool work is included). */
std::uint64_t
processCpuNs()
{
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
        return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
    }
#endif
    return static_cast<std::uint64_t>(std::clock()) * 1000ull;
}

} // namespace

AnalyzerScope::AnalyzerScope(const char *name, std::uint64_t rows)
    : name_(name), start_wall_ns_(traceNowNs()),
      start_cpu_ns_(processCpuNs())
{
    auto &registry = MetricsRegistry::global();
    registry.counter("aiwc.analyzer." + name_ + ".runs").add(1);
    registry.counter("aiwc.analyzer." + name_ + ".rows").add(rows);
}

AnalyzerScope::~AnalyzerScope()
{
    const std::uint64_t wall = traceNowNs() - start_wall_ns_;
    const std::uint64_t cpu = processCpuNs() - start_cpu_ns_;
    auto &registry = MetricsRegistry::global();
    registry.histogram("aiwc.analyzer." + name_ + ".wall_ns").observe(wall);
    registry.histogram("aiwc.analyzer." + name_ + ".cpu_ns").observe(cpu);
    if (traceEnabled())
        detail::recordSpan("analyzer." + name_, start_wall_ns_, wall);
}

} // namespace aiwc::obs
