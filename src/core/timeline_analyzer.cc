#include "aiwc/core/timeline_analyzer.hh"

#include <algorithm>
#include <cmath>

#include "aiwc/base/logging.hh"
#include "aiwc/obs/trace.hh"
#include "aiwc/stats/descriptive.hh"

namespace aiwc::core
{

double
TimelineReport::deadlineSurge(const std::vector<double> &deadline_days,
                              double window_days) const
{
    if (bins.empty() || deadline_days.empty())
        return 0.0;
    const double bin_days = bin_width / one_day;
    double peak_inside = 0.0;
    std::vector<double> outside;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        const double day = static_cast<double>(i) * bin_days;
        bool inside = false;
        for (double d : deadline_days)
            inside = inside || (day >= d - window_days && day <= d);
        const auto subs = static_cast<double>(bins[i].submissions);
        if (inside)
            peak_inside = std::max(peak_inside, subs);
        else
            outside.push_back(subs);
    }
    if (outside.empty())
        return 0.0;
    const double base = stats::percentile(std::move(outside), 0.5);
    return base > 0.0 ? peak_inside / base : 0.0;
}

TimelineReport
TimelineAnalyzer::analyze(const Dataset &dataset) const
{
    obs::AnalyzerScope scope("timeline", dataset.size());
    AIWC_ASSERT(bin_width_ > 0.0, "bin width must be positive");
    TimelineReport report;
    report.bin_width = bin_width_;
    if (dataset.empty())
        return report;

    Seconds horizon = 0.0;
    for (const auto &r : dataset.records())
        horizon = std::max(horizon, r.end_time);
    const auto nbins = static_cast<std::size_t>(
        std::ceil(horizon / bin_width_));
    report.bins.resize(std::max<std::size_t>(nbins, 1));
    for (std::size_t i = 0; i < report.bins.size(); ++i)
        report.bins[i].start = static_cast<double>(i) * bin_width_;

    for (const auto &r : dataset.records()) {
        const auto sub_bin = std::min(
            report.bins.size() - 1,
            static_cast<std::size_t>(r.submit_time / bin_width_));
        ++report.bins[sub_bin].submissions;

        // Spread busy time across the bins the run overlaps.
        const double weight_gpu = static_cast<double>(r.gpus);
        const double weight_nodes =
            r.isGpuJob() ? 0.0
                         : std::ceil(static_cast<double>(r.cpu_slots) /
                                     80.0);
        if (weight_gpu == 0.0 && weight_nodes == 0.0)
            continue;
        const auto first = static_cast<std::size_t>(
            r.start_time / bin_width_);
        const auto last = std::min(
            report.bins.size() - 1,
            static_cast<std::size_t>(r.end_time / bin_width_));
        for (std::size_t b = first; b <= last; ++b) {
            const double lo = std::max(r.start_time,
                                       report.bins[b].start);
            const double hi = std::min(
                r.end_time, report.bins[b].start + bin_width_);
            const double overlap = std::max(hi - lo, 0.0) / bin_width_;
            report.bins[b].mean_gpus_busy += weight_gpu * overlap;
            report.bins[b].mean_cpu_nodes_busy +=
                weight_nodes * overlap;
        }
    }

    std::vector<double> subs;
    for (const auto &bin : report.bins) {
        subs.push_back(static_cast<double>(bin.submissions));
        report.peak_gpus_busy =
            std::max(report.peak_gpus_busy, bin.mean_gpus_busy);
    }
    const double mean = stats::mean(subs);
    if (mean > 0.0) {
        report.submission_peak_to_mean =
            *std::max_element(subs.begin(), subs.end()) / mean;
    }
    return report;
}

} // namespace aiwc::core
