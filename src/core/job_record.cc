#include "aiwc/core/job_record.hh"

#include <algorithm>

#include "aiwc/base/logging.hh"

namespace aiwc::core
{

const stats::RunningSummary &
GpuUsageSummary::byResource(Resource r) const
{
    switch (r) {
      case Resource::Sm: return sm;
      case Resource::MemoryBw: return membw;
      case Resource::MemorySize: return memsize;
      case Resource::PcieTx: return pcie_tx;
      case Resource::PcieRx: return pcie_rx;
      case Resource::Power: return power_watts;
    }
    panic("unknown resource");
}

stats::RunningSummary &
GpuUsageSummary::byResource(Resource r)
{
    return const_cast<stats::RunningSummary &>(
        static_cast<const GpuUsageSummary &>(*this).byResource(r));
}

bool
GpuUsageSummary::idle(double sm_threshold) const
{
    return sm.mean() <= sm_threshold && membw.mean() <= sm_threshold;
}

double
JobRecord::meanUtilization(Resource r) const
{
    if (per_gpu.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &g : per_gpu)
        acc += g.byResource(r).mean();
    return acc / static_cast<double>(per_gpu.size());
}

double
JobRecord::maxUtilization(Resource r) const
{
    double m = 0.0;
    for (const auto &g : per_gpu)
        m = std::max(m, g.byResource(r).max());
    return m;
}

double
JobRecord::meanPowerWatts() const
{
    return meanUtilization(Resource::Power);
}

double
JobRecord::maxPowerWatts() const
{
    return maxUtilization(Resource::Power);
}

int
JobRecord::idleGpuCount(double sm_threshold) const
{
    int n = 0;
    for (const auto &g : per_gpu)
        if (g.idle(sm_threshold))
            ++n;
    return n;
}

} // namespace aiwc::core
