#include "aiwc/core/correlation_analyzer.hh"

#include <cmath>

#include "aiwc/common/parallel.hh"
#include "aiwc/obs/trace.hh"

namespace aiwc::core
{

const char *
toString(UserFeature f)
{
    switch (f) {
      case UserFeature::AvgRuntime: return "avg runtime";
      case UserFeature::AvgSm: return "avg SM util";
      case UserFeature::AvgMembw: return "avg mem util";
      case UserFeature::CovRuntime: return "CoV runtime";
      case UserFeature::CovSm: return "CoV SM util";
      case UserFeature::CovMembw: return "CoV mem util";
    }
    return "?";
}

CorrelationReport
CorrelationAnalyzer::analyze(const Dataset &dataset) const
{
    const UserBehaviorAnalyzer behaviour;
    return analyze(behaviour.summarize(dataset));
}

CorrelationReport
CorrelationAnalyzer::analyze(
    const std::vector<UserSummary> &summaries) const
{
    obs::AnalyzerScope scope("correlation", summaries.size());
    std::vector<double> jobs, hours;
    std::array<std::vector<double>, num_user_features> features;
    for (const auto &u : summaries) {
        if (u.jobs < min_jobs_)
            continue;
        // Zero-mean utilization series yield NaN CoVs (see
        // stats::covPercent); a NaN would poison every rank in the
        // Spearman pass, so such users are skipped entirely to keep
        // the feature vectors aligned.
        if (!std::isfinite(u.runtime_cov_pct) ||
            !std::isfinite(u.sm_cov_pct) ||
            !std::isfinite(u.membw_cov_pct)) {
            continue;
        }
        jobs.push_back(static_cast<double>(u.jobs));
        hours.push_back(u.gpu_hours);
        features[0].push_back(u.avg_runtime_min);
        features[1].push_back(u.avg_sm_pct);
        features[2].push_back(u.avg_membw_pct);
        features[3].push_back(u.runtime_cov_pct);
        features[4].push_back(u.sm_cov_pct);
        features[5].push_back(u.membw_cov_pct);
    }

    CorrelationReport report;
    report.users = jobs.size();
    report.by_jobs.activity = "#jobs";
    report.by_gpu_hours.activity = "GPU-hours";
    // The 2 * num_user_features rank correlations are independent and
    // each one writes its own report slot, so they fan out directly.
    constexpr auto nf = static_cast<std::size_t>(num_user_features);
    parallelFor(globalPool(), 2 * nf, [&](std::size_t k) {
        const std::size_t idx = k % nf;
        if (k < nf) {
            report.by_jobs.features[idx] =
                stats::spearman(jobs, features[idx]);
        } else {
            report.by_gpu_hours.features[idx] =
                stats::spearman(hours, features[idx]);
        }
    });
    return report;
}

} // namespace aiwc::core
