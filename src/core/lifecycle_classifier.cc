#include "aiwc/core/lifecycle_classifier.hh"

namespace aiwc::core
{

namespace
{

/**
 * Terminal state -> lifecycle class, as a branch-free lookup usable
 * over the raw terminal column. Kept in lockstep with classify()'s
 * switch below (which documents the mapping).
 */
constexpr Lifecycle
classifyTerminal(TerminalState terminal)
{
    switch (terminal) {
      case TerminalState::Completed:
        return Lifecycle::Mature;
      case TerminalState::Cancelled:
        return Lifecycle::Exploratory;
      case TerminalState::Failed:
      case TerminalState::NodeFailure:
        return Lifecycle::Development;
      case TerminalState::TimedOut:
        return Lifecycle::Ide;
    }
    return Lifecycle::Mature;
}

/** classifyTerminal over every valid raw terminal value, for u8 rows. */
constexpr std::array<Lifecycle, num_terminal_states>
makeTerminalTable()
{
    std::array<Lifecycle, num_terminal_states> table{};
    for (int t = 0; t < num_terminal_states; ++t)
        table[static_cast<std::size_t>(t)] =
            classifyTerminal(static_cast<TerminalState>(t));
    return table;
}

constexpr auto terminal_table = makeTerminalTable();

} // namespace

Lifecycle
LifecycleClassifier::classify(const JobRecord &job) const
{
    // Hardware losses are <0.5% of jobs (Sec. II); like the paper,
    // classifyTerminal folds them into the failed/development bucket.
    return classifyTerminal(job.terminal);
}

std::array<double, num_lifecycles>
LifecycleClassifier::jobMix(const Dataset &dataset) const
{
    // Count straight off the terminal column: one byte load and one
    // table lookup per filtered row.
    std::array<double, num_lifecycles> mix{};
    const auto idx = dataset.gpuJobIndices();
    if (idx.empty())
        return mix;
    const std::span<const std::uint8_t> terminal =
        dataset.columns().terminals();
    for (const std::uint32_t r : idx)
        mix[static_cast<std::size_t>(terminal_table[terminal[r]])] += 1.0;
    for (auto &m : mix)
        m /= static_cast<double>(idx.size());
    return mix;
}

std::array<double, num_lifecycles>
LifecycleClassifier::gpuHourMix(const Dataset &dataset) const
{
    // Serial accumulation in row order, matching the row walk's
    // summation order bit-for-bit.
    std::array<double, num_lifecycles> mix{};
    double total = 0.0;
    const ColumnTable &cols = dataset.columns();
    const std::span<const std::uint8_t> terminal = cols.terminals();
    const std::span<const double> hours = cols.gpuHours();
    for (const std::uint32_t r : dataset.gpuJobIndices()) {
        mix[static_cast<std::size_t>(terminal_table[terminal[r]])] +=
            hours[r];
        total += hours[r];
    }
    if (total > 0.0) {
        for (auto &m : mix)
            m /= total;
    }
    return mix;
}

double
LifecycleClassifier::accuracyAgainstTruth(const Dataset &dataset) const
{
    const auto idx = dataset.gpuJobIndices();
    if (idx.empty())
        return 1.0;
    const ColumnTable &cols = dataset.columns();
    const std::span<const std::uint8_t> terminal = cols.terminals();
    const std::span<const std::uint8_t> truth = cols.trueClasses();
    std::size_t agree = 0;
    for (const std::uint32_t r : idx)
        if (static_cast<std::uint8_t>(terminal_table[terminal[r]]) ==
            truth[r])
            ++agree;
    return static_cast<double>(agree) / static_cast<double>(idx.size());
}

} // namespace aiwc::core
