#include "aiwc/core/lifecycle_classifier.hh"

namespace aiwc::core
{

Lifecycle
LifecycleClassifier::classify(const JobRecord &job) const
{
    switch (job.terminal) {
      case TerminalState::Completed:
        return Lifecycle::Mature;
      case TerminalState::Cancelled:
        return Lifecycle::Exploratory;
      case TerminalState::Failed:
      case TerminalState::NodeFailure:
        // Hardware losses are <0.5% of jobs (Sec. II); like the paper,
        // we fold them into the failed/development bucket.
        return Lifecycle::Development;
      case TerminalState::TimedOut:
        return Lifecycle::Ide;
    }
    return Lifecycle::Mature;
}

std::array<double, num_lifecycles>
LifecycleClassifier::jobMix(const Dataset &dataset) const
{
    std::array<double, num_lifecycles> mix{};
    const auto jobs = dataset.gpuJobs();
    if (jobs.empty())
        return mix;
    for (const JobRecord *job : jobs)
        mix[static_cast<std::size_t>(classify(*job))] += 1.0;
    for (auto &m : mix)
        m /= static_cast<double>(jobs.size());
    return mix;
}

std::array<double, num_lifecycles>
LifecycleClassifier::gpuHourMix(const Dataset &dataset) const
{
    std::array<double, num_lifecycles> mix{};
    double total = 0.0;
    for (const JobRecord *job : dataset.gpuJobs()) {
        const double hours = job->gpuHours();
        mix[static_cast<std::size_t>(classify(*job))] += hours;
        total += hours;
    }
    if (total > 0.0) {
        for (auto &m : mix)
            m /= total;
    }
    return mix;
}

double
LifecycleClassifier::accuracyAgainstTruth(const Dataset &dataset) const
{
    const auto jobs = dataset.gpuJobs();
    if (jobs.empty())
        return 1.0;
    std::size_t agree = 0;
    for (const JobRecord *job : jobs)
        if (classify(*job) == job->true_class)
            ++agree;
    return static_cast<double>(agree) / static_cast<double>(jobs.size());
}

} // namespace aiwc::core
