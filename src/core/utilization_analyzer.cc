#include "aiwc/core/utilization_analyzer.hh"

#include "aiwc/base/logging.hh"
#include "aiwc/common/parallel.hh"
#include "aiwc/obs/trace.hh"

namespace aiwc::core
{

double
UtilizationReport::fractionAbove(Resource r, double pct) const
{
    return byResource(r).tail(pct);
}

const stats::EmpiricalCdf &
UtilizationReport::byResource(Resource r) const
{
    switch (r) {
      case Resource::Sm: return sm_pct;
      case Resource::MemoryBw: return membw_pct;
      case Resource::MemorySize: return memsize_pct;
      case Resource::PcieTx: return pcie_tx_pct;
      case Resource::PcieRx: return pcie_rx_pct;
      case Resource::Power: break;
    }
    panic("power has no utilization CDF; use PowerAnalyzer");
}

namespace
{

/** Per-shard accumulator of the five per-job mean-utilization series. */
struct UtilizationSeries
{
    std::vector<double> sm, membw, memsize, tx, rx;
};

void
concat(std::vector<double> &into, std::vector<double> &from)
{
    into.insert(into.end(), from.begin(), from.end());
}

} // namespace

UtilizationReport
UtilizationAnalyzer::analyze(const Dataset &dataset) const
{
    const auto jobs = dataset.gpuJobs();
    obs::AnalyzerScope scope("utilization", jobs.size());
    auto series = parallelReduce(
        globalPool(), jobs.size(), UtilizationSeries{},
        [&](UtilizationSeries &acc, std::size_t i) {
            const JobRecord *job = jobs[i];
            acc.sm.push_back(100.0 * job->meanUtilization(Resource::Sm));
            acc.membw.push_back(
                100.0 * job->meanUtilization(Resource::MemoryBw));
            acc.memsize.push_back(
                100.0 * job->meanUtilization(Resource::MemorySize));
            acc.tx.push_back(100.0 *
                             job->meanUtilization(Resource::PcieTx));
            acc.rx.push_back(100.0 *
                             job->meanUtilization(Resource::PcieRx));
        },
        [](UtilizationSeries &into, UtilizationSeries &&from) {
            concat(into.sm, from.sm);
            concat(into.membw, from.membw);
            concat(into.memsize, from.memsize);
            concat(into.tx, from.tx);
            concat(into.rx, from.rx);
        });
    UtilizationReport report;
    report.sm_pct = stats::EmpiricalCdf(std::move(series.sm));
    report.membw_pct = stats::EmpiricalCdf(std::move(series.membw));
    report.memsize_pct = stats::EmpiricalCdf(std::move(series.memsize));
    report.pcie_tx_pct = stats::EmpiricalCdf(std::move(series.tx));
    report.pcie_rx_pct = stats::EmpiricalCdf(std::move(series.rx));
    return report;
}

namespace
{

/** Per-shard accumulator of the by-interface breakdown. */
struct InterfaceSeries
{
    std::array<std::vector<double>, num_interfaces> sm, membw;
    std::array<double, num_interfaces> counts{};
    double total = 0.0;
};

} // namespace

InterfaceUtilization
UtilizationAnalyzer::analyzeByInterface(const Dataset &dataset) const
{
    const auto jobs = dataset.gpuJobs();
    obs::AnalyzerScope scope("utilization_by_interface", jobs.size());
    auto acc = parallelReduce(
        globalPool(), jobs.size(), InterfaceSeries{},
        [&](InterfaceSeries &a, std::size_t j) {
            const JobRecord *job = jobs[j];
            const auto i = static_cast<std::size_t>(job->interface);
            a.sm[i].push_back(100.0 *
                              job->meanUtilization(Resource::Sm));
            a.membw[i].push_back(
                100.0 * job->meanUtilization(Resource::MemoryBw));
            a.counts[i] += 1.0;
            a.total += 1.0;
        },
        [](InterfaceSeries &into, InterfaceSeries &&from) {
            for (std::size_t i = 0;
                 i < static_cast<std::size_t>(num_interfaces); ++i) {
                concat(into.sm[i], from.sm[i]);
                concat(into.membw[i], from.membw[i]);
                into.counts[i] += from.counts[i];
            }
            into.total += from.total;
        });
    auto &sm = acc.sm;
    auto &membw = acc.membw;
    auto &counts = acc.counts;
    const double total = acc.total;
    InterfaceUtilization out;
    for (int i = 0; i < num_interfaces; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        out.sm[idx] = stats::BoxStats::from(std::move(sm[idx]));
        out.membw[idx] = stats::BoxStats::from(std::move(membw[idx]));
        out.job_fraction[idx] = total > 0.0 ? counts[idx] / total : 0.0;
    }
    return out;
}

} // namespace aiwc::core
