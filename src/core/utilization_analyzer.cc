#include "aiwc/core/utilization_analyzer.hh"

#include "aiwc/common/logging.hh"

namespace aiwc::core
{

double
UtilizationReport::fractionAbove(Resource r, double pct) const
{
    return byResource(r).tail(pct);
}

const stats::EmpiricalCdf &
UtilizationReport::byResource(Resource r) const
{
    switch (r) {
      case Resource::Sm: return sm_pct;
      case Resource::MemoryBw: return membw_pct;
      case Resource::MemorySize: return memsize_pct;
      case Resource::PcieTx: return pcie_tx_pct;
      case Resource::PcieRx: return pcie_rx_pct;
      case Resource::Power: break;
    }
    panic("power has no utilization CDF; use PowerAnalyzer");
}

UtilizationReport
UtilizationAnalyzer::analyze(const Dataset &dataset) const
{
    std::vector<double> sm, membw, memsize, tx, rx;
    for (const JobRecord *job : dataset.gpuJobs()) {
        sm.push_back(100.0 * job->meanUtilization(Resource::Sm));
        membw.push_back(100.0 * job->meanUtilization(Resource::MemoryBw));
        memsize.push_back(100.0 *
                          job->meanUtilization(Resource::MemorySize));
        tx.push_back(100.0 * job->meanUtilization(Resource::PcieTx));
        rx.push_back(100.0 * job->meanUtilization(Resource::PcieRx));
    }
    UtilizationReport report;
    report.sm_pct = stats::EmpiricalCdf(std::move(sm));
    report.membw_pct = stats::EmpiricalCdf(std::move(membw));
    report.memsize_pct = stats::EmpiricalCdf(std::move(memsize));
    report.pcie_tx_pct = stats::EmpiricalCdf(std::move(tx));
    report.pcie_rx_pct = stats::EmpiricalCdf(std::move(rx));
    return report;
}

InterfaceUtilization
UtilizationAnalyzer::analyzeByInterface(const Dataset &dataset) const
{
    std::array<std::vector<double>, num_interfaces> sm, membw;
    std::array<double, num_interfaces> counts{};
    double total = 0.0;
    for (const JobRecord *job : dataset.gpuJobs()) {
        const auto i = static_cast<std::size_t>(job->interface);
        sm[i].push_back(100.0 * job->meanUtilization(Resource::Sm));
        membw[i].push_back(100.0 *
                           job->meanUtilization(Resource::MemoryBw));
        counts[i] += 1.0;
        total += 1.0;
    }
    InterfaceUtilization out;
    for (int i = 0; i < num_interfaces; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        out.sm[idx] = stats::BoxStats::from(std::move(sm[idx]));
        out.membw[idx] = stats::BoxStats::from(std::move(membw[idx]));
        out.job_fraction[idx] = total > 0.0 ? counts[idx] / total : 0.0;
    }
    return out;
}

} // namespace aiwc::core
