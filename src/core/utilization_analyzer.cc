#include "aiwc/core/utilization_analyzer.hh"

#include "aiwc/base/logging.hh"
#include "aiwc/obs/trace.hh"
#include "aiwc/stats/kernels.hh"

namespace aiwc::core
{

double
UtilizationReport::fractionAbove(Resource r, double pct) const
{
    return byResource(r).tail(pct);
}

const stats::EmpiricalCdf &
UtilizationReport::byResource(Resource r) const
{
    switch (r) {
      case Resource::Sm: return sm_pct;
      case Resource::MemoryBw: return membw_pct;
      case Resource::MemorySize: return memsize_pct;
      case Resource::PcieTx: return pcie_tx_pct;
      case Resource::PcieRx: return pcie_rx_pct;
      case Resource::Power: break;
    }
    panic("power has no utilization CDF; use PowerAnalyzer");
}

UtilizationReport
UtilizationAnalyzer::analyze(const Dataset &dataset) const
{
    // One columnar gather per resource: contiguous reads through the
    // filtered row indices, scaled to percent exactly as the row walk
    // did (100.0 * mean).
    const ColumnTable &cols = dataset.columns();
    const auto idx = dataset.gpuJobIndices();
    obs::AnalyzerScope scope("utilization", idx.size());
    auto pct = [&](Resource r) {
        return stats::gatherScaled(cols.meanUtil(r), idx, 100.0);
    };
    UtilizationReport report;
    report.sm_pct = stats::EmpiricalCdf(pct(Resource::Sm));
    report.membw_pct = stats::EmpiricalCdf(pct(Resource::MemoryBw));
    report.memsize_pct = stats::EmpiricalCdf(pct(Resource::MemorySize));
    report.pcie_tx_pct = stats::EmpiricalCdf(pct(Resource::PcieTx));
    report.pcie_rx_pct = stats::EmpiricalCdf(pct(Resource::PcieRx));
    return report;
}

InterfaceUtilization
UtilizationAnalyzer::analyzeByInterface(const Dataset &dataset) const
{
    const ColumnTable &cols = dataset.columns();
    const auto idx = dataset.gpuJobIndices();
    obs::AnalyzerScope scope("utilization_by_interface", idx.size());

    // Split the filtered rows by interface (stable, so each bucket
    // stays in record order), then gather each bucket's series.
    const std::span<const std::uint8_t> iface = cols.interfaces();
    std::array<std::vector<std::uint32_t>, num_interfaces> by_iface;
    for (const std::uint32_t r : idx)
        by_iface[iface[r]].push_back(r);

    const double total = static_cast<double>(idx.size());
    InterfaceUtilization out;
    for (int i = 0; i < num_interfaces; ++i) {
        const auto k = static_cast<std::size_t>(i);
        out.sm[k] = stats::BoxStats::from(
            stats::gatherScaled(cols.meanUtil(Resource::Sm),
                                by_iface[k], 100.0));
        out.membw[k] = stats::BoxStats::from(
            stats::gatherScaled(cols.meanUtil(Resource::MemoryBw),
                                by_iface[k], 100.0));
        out.job_fraction[k] =
            total > 0.0 ? static_cast<double>(by_iface[k].size()) / total
                        : 0.0;
    }
    return out;
}

} // namespace aiwc::core
