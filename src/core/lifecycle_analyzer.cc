#include "aiwc/core/lifecycle_analyzer.hh"

#include <map>

#include "aiwc/common/parallel.hh"
#include "aiwc/obs/trace.hh"

namespace aiwc::core
{

double
LifecycleReport::usersWithMatureJobShareBelow(double frac) const
{
    if (users.empty())
        return 0.0;
    std::size_t n = 0;
    for (const auto &u : users)
        if (u.job_share[static_cast<std::size_t>(Lifecycle::Mature)] <
            frac)
            ++n;
    return static_cast<double>(n) / static_cast<double>(users.size());
}

double
LifecycleReport::usersWithMatureHourShareBelow(double frac) const
{
    if (users.empty())
        return 0.0;
    std::size_t n = 0;
    for (const auto &u : users)
        if (u.hour_share[static_cast<std::size_t>(Lifecycle::Mature)] <
            frac)
            ++n;
    return static_cast<double>(n) / static_cast<double>(users.size());
}

double
LifecycleReport::usersWithNonMatureHoursAbove(double frac) const
{
    if (users.empty())
        return 0.0;
    std::size_t n = 0;
    for (const auto &u : users) {
        const double mature =
            u.hour_share[static_cast<std::size_t>(Lifecycle::Mature)];
        if (1.0 - mature > frac)
            ++n;
    }
    return static_cast<double>(n) / static_cast<double>(users.size());
}

LifecycleReport
LifecycleAnalyzer::analyze(const Dataset &dataset) const
{
    LifecycleReport report;
    const auto jobs = dataset.gpuJobs();
    obs::AnalyzerScope scope("lifecycle", jobs.size());
    if (jobs.empty())
        return report;

    // Per-shard accumulator: per-class tallies plus per-user shares.
    // All counters are sums, all series are concatenations, so the
    // shard-order merge is deterministic for any thread count.
    struct Tally
    {
        std::array<double, num_lifecycles> count{};
        std::array<double, num_lifecycles> hours{};
        std::array<std::vector<double>, num_lifecycles> runtimes;
        std::array<std::vector<double>, num_lifecycles> sm, membw,
            memsize;
        std::map<UserId, UserClassShares> per_user;
        double total_hours = 0.0;
    };
    Tally tally = parallelReduce(
        globalPool(), jobs.size(), Tally{},
        [&](Tally &acc, std::size_t k) {
            const JobRecord *job = jobs[k];
            const Lifecycle c = classifier_.classify(*job);
            const auto i = static_cast<std::size_t>(c);
            acc.count[i] += 1.0;
            acc.hours[i] += job->gpuHours();
            acc.total_hours += job->gpuHours();
            acc.runtimes[i].push_back(job->runTime() / 60.0);
            acc.sm[i].push_back(100.0 *
                                job->meanUtilization(Resource::Sm));
            acc.membw[i].push_back(
                100.0 * job->meanUtilization(Resource::MemoryBw));
            acc.memsize[i].push_back(
                100.0 * job->meanUtilization(Resource::MemorySize));

            auto &u = acc.per_user[job->user];
            u.user = job->user;
            ++u.jobs;
            u.gpu_hours += job->gpuHours();
            u.job_share[i] += 1.0;
            u.hour_share[i] += job->gpuHours();
        },
        [](Tally &into, Tally &&from) {
            auto concat = [](std::vector<double> &dst,
                             std::vector<double> &src) {
                dst.insert(dst.end(), src.begin(), src.end());
            };
            for (std::size_t i = 0;
                 i < static_cast<std::size_t>(num_lifecycles); ++i) {
                into.count[i] += from.count[i];
                into.hours[i] += from.hours[i];
                concat(into.runtimes[i], from.runtimes[i]);
                concat(into.sm[i], from.sm[i]);
                concat(into.membw[i], from.membw[i]);
                concat(into.memsize[i], from.memsize[i]);
            }
            into.total_hours += from.total_hours;
            for (auto &[user, shares] : from.per_user) {
                auto &u = into.per_user[user];
                u.user = user;
                u.jobs += shares.jobs;
                u.gpu_hours += shares.gpu_hours;
                for (std::size_t i = 0;
                     i < static_cast<std::size_t>(num_lifecycles);
                     ++i) {
                    u.job_share[i] += shares.job_share[i];
                    u.hour_share[i] += shares.hour_share[i];
                }
            }
        });
    auto &count = tally.count;
    auto &hours = tally.hours;
    auto &runtimes = tally.runtimes;
    auto &sm = tally.sm;
    auto &membw = tally.membw;
    auto &memsize = tally.memsize;
    auto &per_user = tally.per_user;
    const double total_hours = tally.total_hours;

    const auto n = static_cast<double>(jobs.size());
    for (int c = 0; c < num_lifecycles; ++c) {
        const auto i = static_cast<std::size_t>(c);
        report.job_mix[i] = count[i] / n;
        report.hour_mix[i] =
            total_hours > 0.0 ? hours[i] / total_hours : 0.0;
        report.median_runtime_min[i] =
            stats::percentile(std::move(runtimes[i]), 0.5);
        report.sm_pct[i] = stats::BoxStats::from(std::move(sm[i]));
        report.membw_pct[i] = stats::BoxStats::from(std::move(membw[i]));
        report.memsize_pct[i] =
            stats::BoxStats::from(std::move(memsize[i]));
    }

    report.users.reserve(per_user.size());
    for (auto &[user, shares] : per_user) {
        const auto user_jobs = static_cast<double>(shares.jobs);
        for (auto &s : shares.job_share)
            s /= user_jobs;
        if (shares.gpu_hours > 0.0) {
            for (auto &s : shares.hour_share)
                s /= shares.gpu_hours;
        }
        report.users.push_back(std::move(shares));
    }
    return report;
}

} // namespace aiwc::core
