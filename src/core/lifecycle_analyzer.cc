#include "aiwc/core/lifecycle_analyzer.hh"

#include <map>

namespace aiwc::core
{

double
LifecycleReport::usersWithMatureJobShareBelow(double frac) const
{
    if (users.empty())
        return 0.0;
    std::size_t n = 0;
    for (const auto &u : users)
        if (u.job_share[static_cast<std::size_t>(Lifecycle::Mature)] <
            frac)
            ++n;
    return static_cast<double>(n) / static_cast<double>(users.size());
}

double
LifecycleReport::usersWithMatureHourShareBelow(double frac) const
{
    if (users.empty())
        return 0.0;
    std::size_t n = 0;
    for (const auto &u : users)
        if (u.hour_share[static_cast<std::size_t>(Lifecycle::Mature)] <
            frac)
            ++n;
    return static_cast<double>(n) / static_cast<double>(users.size());
}

double
LifecycleReport::usersWithNonMatureHoursAbove(double frac) const
{
    if (users.empty())
        return 0.0;
    std::size_t n = 0;
    for (const auto &u : users) {
        const double mature =
            u.hour_share[static_cast<std::size_t>(Lifecycle::Mature)];
        if (1.0 - mature > frac)
            ++n;
    }
    return static_cast<double>(n) / static_cast<double>(users.size());
}

LifecycleReport
LifecycleAnalyzer::analyze(const Dataset &dataset) const
{
    LifecycleReport report;
    const auto jobs = dataset.gpuJobs();
    if (jobs.empty())
        return report;

    std::array<double, num_lifecycles> count{};
    std::array<double, num_lifecycles> hours{};
    std::array<std::vector<double>, num_lifecycles> runtimes;
    std::array<std::vector<double>, num_lifecycles> sm, membw, memsize;
    std::map<UserId, UserClassShares> per_user;

    double total_hours = 0.0;
    for (const JobRecord *job : jobs) {
        const Lifecycle c = classifier_.classify(*job);
        const auto i = static_cast<std::size_t>(c);
        count[i] += 1.0;
        hours[i] += job->gpuHours();
        total_hours += job->gpuHours();
        runtimes[i].push_back(job->runTime() / 60.0);
        sm[i].push_back(100.0 * job->meanUtilization(Resource::Sm));
        membw[i].push_back(100.0 *
                           job->meanUtilization(Resource::MemoryBw));
        memsize[i].push_back(100.0 *
                             job->meanUtilization(Resource::MemorySize));

        auto &u = per_user[job->user];
        u.user = job->user;
        ++u.jobs;
        u.gpu_hours += job->gpuHours();
        u.job_share[i] += 1.0;
        u.hour_share[i] += job->gpuHours();
    }

    const auto n = static_cast<double>(jobs.size());
    for (int c = 0; c < num_lifecycles; ++c) {
        const auto i = static_cast<std::size_t>(c);
        report.job_mix[i] = count[i] / n;
        report.hour_mix[i] =
            total_hours > 0.0 ? hours[i] / total_hours : 0.0;
        report.median_runtime_min[i] =
            stats::percentile(std::move(runtimes[i]), 0.5);
        report.sm_pct[i] = stats::BoxStats::from(std::move(sm[i]));
        report.membw_pct[i] = stats::BoxStats::from(std::move(membw[i]));
        report.memsize_pct[i] =
            stats::BoxStats::from(std::move(memsize[i]));
    }

    report.users.reserve(per_user.size());
    for (auto &[user, shares] : per_user) {
        const auto user_jobs = static_cast<double>(shares.jobs);
        for (auto &s : shares.job_share)
            s /= user_jobs;
        if (shares.gpu_hours > 0.0) {
            for (auto &s : shares.hour_share)
                s /= shares.gpu_hours;
        }
        report.users.push_back(std::move(shares));
    }
    return report;
}

} // namespace aiwc::core
