#include "aiwc/core/id_table.hh"

#include "aiwc/base/check.hh"
#include "aiwc/common/types.hh"

namespace aiwc::core
{

std::uint32_t
IdTable::intern(std::uint32_t raw)
{
    const auto it = dense_of_.find(raw);
    if (it != dense_of_.end())
        return it->second;
    const auto dense = static_cast<std::uint32_t>(raw_ids_.size());
    AIWC_CHECK(dense != invalid_id, "id table full");
    raw_ids_.push_back(raw);
    dense_of_.emplace(raw, dense);
    return dense;
}

std::uint32_t
IdTable::denseOf(std::uint32_t raw) const
{
    const auto it = dense_of_.find(raw);
    return it == dense_of_.end() ? invalid_id : it->second;
}

std::uint32_t
IdTable::rawOf(std::uint32_t dense) const
{
    AIWC_CHECK(dense < raw_ids_.size(), "dense id ", dense,
               " out of range (", raw_ids_.size(), " interned)");
    return raw_ids_[dense];
}

std::vector<std::uint32_t>
IdTable::mergeFrom(const IdTable &other)
{
    std::vector<std::uint32_t> remap;
    remap.reserve(other.raw_ids_.size());
    for (const std::uint32_t raw : other.raw_ids_)
        remap.push_back(intern(raw));
    return remap;
}

IdTable
IdTable::fromRawIds(std::span<const std::uint32_t> raw_ids)
{
    IdTable table;
    for (const std::uint32_t raw : raw_ids) {
        const std::uint32_t before =
            static_cast<std::uint32_t>(table.size());
        const std::uint32_t dense = table.intern(raw);
        AIWC_CHECK(dense == before, "duplicate raw id ", raw,
                   " in dense id table");
    }
    return table;
}

} // namespace aiwc::core
