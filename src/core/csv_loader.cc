#include "aiwc/core/csv_loader.hh"

#include <cstdlib>
#include <string>

#include "aiwc/common/csv.hh"
#include "aiwc/base/logging.hh"

namespace aiwc::core
{

Interface
interfaceFromString(const std::string &name)
{
    for (int i = 0; i < num_interfaces; ++i) {
        const auto iface = static_cast<Interface>(i);
        if (name == toString(iface))
            return iface;
    }
    fatal("unknown interface name in CSV: '", name, "'");
}

TerminalState
terminalFromString(const std::string &name)
{
    for (int i = 0; i <= static_cast<int>(TerminalState::NodeFailure);
         ++i) {
        const auto state = static_cast<TerminalState>(i);
        if (name == toString(state))
            return state;
    }
    fatal("unknown terminal state in CSV: '", name, "'");
}

namespace
{

/** Column order of Dataset::writeCsv. */
enum Column : std::size_t
{
    kJobId,
    kUser,
    kInterface,
    kTerminal,
    kSubmit,
    kStart,
    kEnd,
    kGpus,
    kCpuSlots,
    kRamGb,
    kSmMean,
    kSmMax,
    kMembwMean,
    kMembwMax,
    kMemsizeMean,
    kMemsizeMax,
    kPcieTxMean,
    kPcieRxMean,
    kPowerMeanW,
    kPowerMaxW,
    kColumns,
};

double
num(const std::vector<std::string> &cells, Column c)
{
    return std::strtod(cells[c].c_str(), nullptr);
}

/** Rebuild a metric summary from (mean, max); min defaults to 0. */
stats::RunningSummary
metric(double mean, double max)
{
    // One nominal sample per known statistic; exact mean/max are what
    // the analyzers consume.
    const double lo = std::min(0.0, mean);
    return stats::RunningSummary::fromMoments(2, lo, mean,
                                              std::max(mean, max));
}

} // namespace

Dataset
loadDatasetCsv(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line))
        fatal("empty CSV: no header");
    auto header = parseCsvLine(line);
    // Tolerate a UTF-8 byte-order mark in front of the header — some
    // spreadsheet exports prepend one.
    if (!header.empty() && header[0].rfind("\xef\xbb\xbf", 0) == 0)
        header[0].erase(0, 3);
    if (header.size() != kColumns || header[0] != "job_id")
        fatal("unrecognized dataset CSV header (", header.size(),
              " columns)");

    Dataset dataset;
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        // A blank line is blank whether the file is LF or CRLF.
        if (line.empty() || line == "\r")
            continue;
        const auto cells = parseCsvLine(line);
        if (cells.size() != kColumns) {
            warn("skipping CSV line ", line_no, ": expected ",
                 static_cast<std::size_t>(kColumns), " cells, got ",
                 cells.size());
            continue;
        }

        JobRecord r;
        r.id = static_cast<JobId>(
            std::strtoul(cells[kJobId].c_str(), nullptr, 10));
        r.user = static_cast<UserId>(
            std::strtoul(cells[kUser].c_str(), nullptr, 10));
        r.interface = interfaceFromString(cells[kInterface]);
        r.terminal = terminalFromString(cells[kTerminal]);
        r.submit_time = num(cells, kSubmit);
        r.start_time = num(cells, kStart);
        r.end_time = num(cells, kEnd);
        r.gpus = static_cast<int>(num(cells, kGpus));
        r.cpu_slots = static_cast<int>(num(cells, kCpuSlots));
        r.ram_gb = num(cells, kRamGb);

        if (r.gpus > 0) {
            // The summary CSV carries the across-GPU average; fan it
            // back out so meanUtilization()/maxUtilization() agree
            // with the original values.
            GpuUsageSummary s;
            s.sm = metric(num(cells, kSmMean), num(cells, kSmMax));
            s.membw =
                metric(num(cells, kMembwMean), num(cells, kMembwMax));
            s.memsize = metric(num(cells, kMemsizeMean),
                               num(cells, kMemsizeMax));
            s.pcie_tx = metric(num(cells, kPcieTxMean),
                               num(cells, kPcieTxMean));
            s.pcie_rx = metric(num(cells, kPcieRxMean),
                               num(cells, kPcieRxMean));
            s.power_watts = metric(num(cells, kPowerMeanW),
                                   num(cells, kPowerMaxW));
            r.per_gpu.assign(static_cast<std::size_t>(r.gpus), s);
        }
        dataset.add(std::move(r));
    }
    return dataset;
}

} // namespace aiwc::core
