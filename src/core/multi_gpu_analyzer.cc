#include "aiwc/core/multi_gpu_analyzer.hh"

#include <cmath>
#include <map>

#include "aiwc/obs/trace.hh"
#include "aiwc/stats/descriptive.hh"

namespace aiwc::core
{

const char *
sizeBucketName(int bucket)
{
    switch (bucket) {
      case 0: return "1 GPU";
      case 1: return "2 GPUs";
      case 2: return "3-8 GPUs";
      case 3: return ">=9 GPUs";
    }
    return "?";
}

int
sizeBucketOf(int gpus)
{
    if (gpus <= 1)
        return 0;
    if (gpus == 2)
        return 1;
    if (gpus <= 8)
        return 2;
    return 3;
}

namespace
{

/** CoV (%) of per-GPU mean utilization of one resource. */
double
acrossGpuCov(const JobRecord &job, Resource r, bool active_only)
{
    std::vector<double> means;
    means.reserve(job.per_gpu.size());
    for (const auto &gpu : job.per_gpu) {
        if (active_only && gpu.idle())
            continue;
        means.push_back(gpu.byResource(r).mean());
    }
    if (means.size() < 2)
        return 0.0;
    // A zero-mean series (every GPU fully idle on this resource) has
    // no across-GPU imbalance; map covPercent's NaN back to 0 rather
    // than dropping the job from the imbalance CDF.
    const double cov = stats::covPercent(means);
    return std::isfinite(cov) ? cov : 0.0;
}

} // namespace

MultiGpuReport
MultiGpuAnalyzer::analyze(const Dataset &dataset) const
{
    MultiGpuReport report;
    const auto jobs = dataset.gpuJobs();
    obs::AnalyzerScope scope("multi_gpu", jobs.size());
    if (jobs.empty())
        return report;

    std::array<double, num_size_buckets> job_count{};
    std::array<double, num_size_buckets> hours{};
    std::array<std::vector<double>, num_size_buckets> waits;
    std::map<UserId, int> user_max_gpus;

    std::vector<double> sm_all, membw_all, memsize_all;
    std::vector<double> sm_act, membw_act, memsize_act;
    double multi_jobs = 0.0, idle_multi_jobs = 0.0;
    double total_hours = 0.0;

    for (const JobRecord *job : jobs) {
        const int bucket = sizeBucketOf(job->gpus);
        const auto b = static_cast<std::size_t>(bucket);
        job_count[b] += 1.0;
        hours[b] += job->gpuHours();
        total_hours += job->gpuHours();
        waits[b].push_back(job->waitTime());

        auto &mx = user_max_gpus[job->user];
        mx = std::max(mx, job->gpus);

        if (job->gpus < 2)
            continue;
        multi_jobs += 1.0;
        if (job->idleGpuCount() * 2 >= job->gpus)
            idle_multi_jobs += 1.0;

        sm_all.push_back(acrossGpuCov(*job, Resource::Sm, false));
        membw_all.push_back(acrossGpuCov(*job, Resource::MemoryBw, false));
        memsize_all.push_back(
            acrossGpuCov(*job, Resource::MemorySize, false));
        sm_act.push_back(acrossGpuCov(*job, Resource::Sm, true));
        membw_act.push_back(acrossGpuCov(*job, Resource::MemoryBw, true));
        memsize_act.push_back(
            acrossGpuCov(*job, Resource::MemorySize, true));
    }

    const auto n = static_cast<double>(jobs.size());
    for (int b = 0; b < num_size_buckets; ++b) {
        const auto i = static_cast<std::size_t>(b);
        report.job_fraction[i] = job_count[i] / n;
        report.hour_fraction[i] =
            total_hours > 0.0 ? hours[i] / total_hours : 0.0;
        report.median_wait_s[i] =
            stats::percentile(std::move(waits[i]), 0.5);
    }

    const auto num_users = static_cast<double>(user_max_gpus.size());
    double multi_u = 0.0, three_u = 0.0, nine_u = 0.0;
    for (const auto &[user, mx] : user_max_gpus) {
        if (mx >= 2)
            multi_u += 1.0;
        if (mx >= 3)
            three_u += 1.0;
        if (mx >= 9)
            nine_u += 1.0;
    }
    report.users_multi = multi_u / num_users;
    report.users_3plus = three_u / num_users;
    report.users_9plus = nine_u / num_users;
    report.idle_gpu_job_fraction =
        multi_jobs > 0.0 ? idle_multi_jobs / multi_jobs : 0.0;

    report.sm_cov_all_pct = stats::EmpiricalCdf(std::move(sm_all));
    report.membw_cov_all_pct = stats::EmpiricalCdf(std::move(membw_all));
    report.memsize_cov_all_pct =
        stats::EmpiricalCdf(std::move(memsize_all));
    report.sm_cov_active_pct = stats::EmpiricalCdf(std::move(sm_act));
    report.membw_cov_active_pct =
        stats::EmpiricalCdf(std::move(membw_act));
    report.memsize_cov_active_pct =
        stats::EmpiricalCdf(std::move(memsize_act));
    return report;
}

} // namespace aiwc::core
