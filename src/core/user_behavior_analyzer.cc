#include "aiwc/core/user_behavior_analyzer.hh"

#include <cmath>

#include "aiwc/common/parallel.hh"
#include "aiwc/obs/trace.hh"
#include "aiwc/stats/descriptive.hh"
#include "aiwc/stats/share_curve.hh"

namespace aiwc::core
{

std::vector<UserSummary>
UserBehaviorAnalyzer::summarize(const Dataset &dataset) const
{
    // Each user's summary depends only on that user's jobs, so the
    // per-user pass fans out with every user writing its own slot —
    // the output order is the map's user-id order either way.
    const auto by_user = dataset.gpuJobsByUser();
    std::vector<const std::pair<const UserId,
                                std::vector<const JobRecord *>> *>
        users;
    users.reserve(by_user.size());
    for (const auto &entry : by_user)
        users.push_back(&entry);

    std::vector<UserSummary> out(users.size());
    parallelFor(globalPool(), users.size(), [&](std::size_t u) {
        const UserId user = users[u]->first;
        const std::vector<const JobRecord *> &jobs = users[u]->second;
        UserSummary s;
        s.user = user;
        s.jobs = jobs.size();

        std::vector<double> rt, sm, membw, memsize;
        rt.reserve(jobs.size());
        for (const JobRecord *job : jobs) {
            rt.push_back(job->runTime() / 60.0);
            sm.push_back(100.0 * job->meanUtilization(Resource::Sm));
            membw.push_back(100.0 *
                            job->meanUtilization(Resource::MemoryBw));
            memsize.push_back(
                100.0 * job->meanUtilization(Resource::MemorySize));
            s.gpu_hours += job->gpuHours();
        }
        s.avg_runtime_min = stats::mean(rt);
        s.avg_sm_pct = stats::mean(sm);
        s.avg_membw_pct = stats::mean(membw);
        s.avg_memsize_pct = stats::mean(memsize);
        if (jobs.size() >= min_jobs_for_cov_) {
            s.runtime_cov_pct = stats::covPercent(rt);
            s.sm_cov_pct = stats::covPercent(sm);
            s.membw_cov_pct = stats::covPercent(membw);
            s.memsize_cov_pct = stats::covPercent(memsize);
        }
        out[u] = std::move(s);
    });
    return out;
}

UserBehaviorReport
UserBehaviorAnalyzer::analyze(const Dataset &dataset) const
{
    obs::AnalyzerScope scope("user_behavior", dataset.gpuJobs().size());
    UserBehaviorReport report;
    report.users = summarize(dataset);

    std::vector<double> avg_rt, avg_sm, avg_membw, avg_memsize;
    std::vector<double> cov_rt, cov_sm, cov_membw, cov_memsize;
    std::vector<double> jobs_per_user;
    for (const auto &u : report.users) {
        avg_rt.push_back(u.avg_runtime_min);
        avg_sm.push_back(u.avg_sm_pct);
        avg_membw.push_back(u.avg_membw_pct);
        avg_memsize.push_back(u.avg_memsize_pct);
        jobs_per_user.push_back(static_cast<double>(u.jobs));
        if (u.jobs >= min_jobs_for_cov_) {
            // covPercent is NaN for zero-mean series (e.g. a user
            // whose jobs never touched a resource); only finite CoVs
            // belong on the Fig. 11 CDFs.
            auto push_finite = [](std::vector<double> &dst, double v) {
                if (std::isfinite(v))
                    dst.push_back(v);
            };
            push_finite(cov_rt, u.runtime_cov_pct);
            push_finite(cov_sm, u.sm_cov_pct);
            push_finite(cov_membw, u.membw_cov_pct);
            push_finite(cov_memsize, u.memsize_cov_pct);
        }
    }

    report.avg_runtime_min = stats::EmpiricalCdf(std::move(avg_rt));
    report.avg_sm_pct = stats::EmpiricalCdf(std::move(avg_sm));
    report.avg_membw_pct = stats::EmpiricalCdf(std::move(avg_membw));
    report.avg_memsize_pct = stats::EmpiricalCdf(std::move(avg_memsize));
    report.runtime_cov_pct = stats::EmpiricalCdf(std::move(cov_rt));
    report.sm_cov_pct = stats::EmpiricalCdf(std::move(cov_sm));
    report.membw_cov_pct = stats::EmpiricalCdf(std::move(cov_membw));
    report.memsize_cov_pct = stats::EmpiricalCdf(std::move(cov_memsize));

    report.top5_job_share = stats::topShare(jobs_per_user, 0.05);
    report.top20_job_share = stats::topShare(jobs_per_user, 0.20);
    report.median_jobs_per_user =
        stats::percentile(jobs_per_user, 0.5);
    return report;
}

} // namespace aiwc::core
