#include "aiwc/core/user_behavior_analyzer.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "aiwc/common/parallel.hh"
#include "aiwc/obs/trace.hh"
#include "aiwc/stats/descriptive.hh"
#include "aiwc/stats/kernels.hh"
#include "aiwc/stats/share_curve.hh"

namespace aiwc::core
{

std::vector<UserSummary>
UserBehaviorAnalyzer::summarize(const Dataset &dataset) const
{
    // Bucket the filtered rows by interned user index — one counting
    // sort instead of a per-shard map merge — then fan the per-user
    // summaries out with every user writing its own slot. The stable
    // partition keeps each user's jobs in record order, exactly like
    // the old map-of-vectors.
    const ColumnTable &cols = dataset.columns();
    const auto idx = dataset.gpuJobIndices();
    const std::size_t n_users = cols.users().size();
    const auto part =
        stats::partitionByKey(idx, cols.userIndex(), n_users);

    // The report is ordered by ascending user id (the old std::map
    // order); the id table is in first-appearance order, so sort the
    // dense indices by raw id, keeping only users with filtered jobs.
    std::vector<std::pair<UserId, std::uint32_t>> order;
    order.reserve(n_users);
    for (std::uint32_t d = 0; d < n_users; ++d)
        if (part.offsets[d + 1] > part.offsets[d])
            order.emplace_back(cols.users().rawOf(d), d);
    std::sort(order.begin(), order.end());

    const std::span<const double> runtime = cols.runtimeS();
    const std::span<const double> hours = cols.gpuHours();
    const std::span<const double> sm_col = cols.meanUtil(Resource::Sm);
    const std::span<const double> membw_col =
        cols.meanUtil(Resource::MemoryBw);
    const std::span<const double> memsize_col =
        cols.meanUtil(Resource::MemorySize);

    std::vector<UserSummary> out(order.size());
    parallelFor(globalPool(), order.size(), [&](std::size_t u) {
        const auto [user, dense] = order[u];
        const std::span<const std::uint32_t> rows =
            std::span<const std::uint32_t>(part.rows).subspan(
                part.offsets[dense],
                part.offsets[dense + 1] - part.offsets[dense]);
        UserSummary s;
        s.user = user;
        s.jobs = rows.size();

        std::vector<double> rt, sm, membw, memsize;
        rt.reserve(rows.size());
        for (const std::uint32_t r : rows) {
            rt.push_back(runtime[r] / 60.0);
            sm.push_back(100.0 * sm_col[r]);
            membw.push_back(100.0 * membw_col[r]);
            memsize.push_back(100.0 * memsize_col[r]);
            s.gpu_hours += hours[r];
        }
        s.avg_runtime_min = stats::mean(rt);
        s.avg_sm_pct = stats::mean(sm);
        s.avg_membw_pct = stats::mean(membw);
        s.avg_memsize_pct = stats::mean(memsize);
        if (rows.size() >= min_jobs_for_cov_) {
            s.runtime_cov_pct = stats::covPercent(rt);
            s.sm_cov_pct = stats::covPercent(sm);
            s.membw_cov_pct = stats::covPercent(membw);
            s.memsize_cov_pct = stats::covPercent(memsize);
        }
        out[u] = std::move(s);
    });
    return out;
}

UserBehaviorReport
UserBehaviorAnalyzer::analyze(const Dataset &dataset) const
{
    obs::AnalyzerScope scope("user_behavior",
                             dataset.gpuJobIndices().size());
    UserBehaviorReport report;
    report.users = summarize(dataset);

    std::vector<double> avg_rt, avg_sm, avg_membw, avg_memsize;
    std::vector<double> cov_rt, cov_sm, cov_membw, cov_memsize;
    std::vector<double> jobs_per_user;
    for (const auto &u : report.users) {
        avg_rt.push_back(u.avg_runtime_min);
        avg_sm.push_back(u.avg_sm_pct);
        avg_membw.push_back(u.avg_membw_pct);
        avg_memsize.push_back(u.avg_memsize_pct);
        jobs_per_user.push_back(static_cast<double>(u.jobs));
        if (u.jobs >= min_jobs_for_cov_) {
            // covPercent is NaN for zero-mean series (e.g. a user
            // whose jobs never touched a resource); only finite CoVs
            // belong on the Fig. 11 CDFs.
            auto push_finite = [](std::vector<double> &dst, double v) {
                if (std::isfinite(v))
                    dst.push_back(v);
            };
            push_finite(cov_rt, u.runtime_cov_pct);
            push_finite(cov_sm, u.sm_cov_pct);
            push_finite(cov_membw, u.membw_cov_pct);
            push_finite(cov_memsize, u.memsize_cov_pct);
        }
    }

    report.avg_runtime_min = stats::EmpiricalCdf(std::move(avg_rt));
    report.avg_sm_pct = stats::EmpiricalCdf(std::move(avg_sm));
    report.avg_membw_pct = stats::EmpiricalCdf(std::move(avg_membw));
    report.avg_memsize_pct = stats::EmpiricalCdf(std::move(avg_memsize));
    report.runtime_cov_pct = stats::EmpiricalCdf(std::move(cov_rt));
    report.sm_cov_pct = stats::EmpiricalCdf(std::move(cov_sm));
    report.membw_cov_pct = stats::EmpiricalCdf(std::move(cov_membw));
    report.memsize_cov_pct = stats::EmpiricalCdf(std::move(cov_memsize));

    report.top5_job_share = stats::topShare(jobs_per_user, 0.05);
    report.top20_job_share = stats::topShare(jobs_per_user, 0.20);
    report.median_jobs_per_user =
        stats::percentile(jobs_per_user, 0.5);
    return report;
}

} // namespace aiwc::core
