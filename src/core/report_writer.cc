#include "aiwc/core/report_writer.hh"

#include "aiwc/common/table.hh"

namespace aiwc::core
{

namespace
{

/** One row of quantiles for a CDF, formatted with `precision`. */
std::vector<std::string>
quantileRow(const std::string &label, const stats::EmpiricalCdf &cdf,
            int precision = 1)
{
    std::vector<std::string> row{label};
    for (double q : report_quantiles)
        row.push_back(formatNumber(cdf.quantile(q), precision));
    return row;
}

std::vector<std::string>
quantileHeader(const std::string &metric)
{
    std::vector<std::string> header{metric};
    for (double q : report_quantiles)
        header.push_back("p" + formatNumber(q * 100.0, 0));
    return header;
}

std::vector<std::string>
boxRow(const std::string &label, const stats::BoxStats &b)
{
    return {label,
            formatNumber(b.q1, 1),
            formatNumber(b.median, 1),
            formatNumber(b.q3, 1),
            formatNumber(b.whisker_lo, 1),
            formatNumber(b.whisker_hi, 1),
            formatNumber(static_cast<double>(b.n), 0)};
}

} // namespace

void
ReportWriter::print(const ServiceTimeReport &r) const
{
    os_ << "== Fig. 3a: run times (minutes) ==\n";
    TextTable rt(quantileHeader("jobs"));
    rt.addRow(quantileRow("GPU", r.gpu_runtime_min));
    rt.addRow(quantileRow("CPU", r.cpu_runtime_min));
    rt.print(os_);

    os_ << "== Fig. 3b: queue waits ==\n";
    TextTable w(quantileHeader("wait (s)"));
    w.addRow(quantileRow("GPU", r.gpu_wait_s));
    w.addRow(quantileRow("CPU", r.cpu_wait_s));
    w.print(os_);
    TextTable wp(quantileHeader("wait (% of service)"));
    wp.addRow(quantileRow("GPU", r.gpu_wait_pct, 2));
    wp.addRow(quantileRow("CPU", r.cpu_wait_pct, 2));
    wp.print(os_);
    os_ << "GPU jobs waiting < 1 min: "
        << formatPercent(r.gpuWaitUnder(60.0)) << "\n"
        << "CPU jobs waiting > 1 min: "
        << formatPercent(r.cpuWaitOver(60.0)) << "\n";
}

void
ReportWriter::print(const UtilizationReport &r) const
{
    os_ << "== Fig. 4: mean GPU resource utilization (%) ==\n";
    TextTable t(quantileHeader("resource"));
    t.addRow(quantileRow("SM", r.sm_pct));
    t.addRow(quantileRow("memory BW", r.membw_pct));
    t.addRow(quantileRow("memory size", r.memsize_pct));
    t.addRow(quantileRow("PCIe Tx", r.pcie_tx_pct));
    t.addRow(quantileRow("PCIe Rx", r.pcie_rx_pct));
    t.print(os_);
    os_ << "jobs over 50% mean SM: "
        << formatPercent(r.fractionAbove(Resource::Sm, 50.0))
        << ", memory BW: "
        << formatPercent(r.fractionAbove(Resource::MemoryBw, 50.0))
        << ", memory size: "
        << formatPercent(r.fractionAbove(Resource::MemorySize, 50.0))
        << "\n";
}

void
ReportWriter::print(const InterfaceUtilization &r) const
{
    os_ << "== Fig. 5: utilization by submission interface (%) ==\n";
    TextTable t({"interface", "job share", "SM median", "SM q3",
                 "memBW median", "memBW q3"});
    for (int i = 0; i < num_interfaces; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        t.addRow({toString(static_cast<Interface>(i)),
                  formatPercent(r.job_fraction[idx]),
                  formatNumber(r.sm[idx].median, 1),
                  formatNumber(r.sm[idx].q3, 1),
                  formatNumber(r.membw[idx].median, 1),
                  formatNumber(r.membw[idx].q3, 1)});
    }
    t.print(os_);
}

void
ReportWriter::print(const PhaseReport &r) const
{
    os_ << "== Figs. 6-7a: phase behaviour (" << r.jobs
        << " time-series jobs) ==\n";
    TextTable t(quantileHeader("metric"));
    t.addRow(quantileRow("active time (%)", r.active_fraction_pct));
    t.addRow(quantileRow("idle interval CoV (%)",
                         r.idle_interval_cov_pct, 0));
    t.addRow(quantileRow("active interval CoV (%)",
                         r.active_interval_cov_pct, 0));
    t.addRow(quantileRow("active SM CoV (%)", r.active_sm_cov_pct));
    t.addRow(quantileRow("active memBW CoV (%)", r.active_membw_cov_pct));
    t.addRow(
        quantileRow("active memsize CoV (%)", r.active_memsize_cov_pct));
    t.print(os_);
}

void
ReportWriter::print(const BottleneckReport &r) const
{
    os_ << "== Figs. 7b/8a: single-resource bottlenecks ==\n";
    TextTable t({"resource", "jobs bottlenecked"});
    for (std::size_t i = 0; i < bottleneck_resources.size(); ++i)
        t.addRow({toString(bottleneck_resources[i]),
                  formatPercent(r.single[i])});
    t.print(os_);

    os_ << "== Fig. 8b: two-resource bottlenecks ==\n";
    TextTable p({"pair", "jobs bottlenecked"});
    for (std::size_t i = 0; i < bottleneck_resources.size(); ++i) {
        for (std::size_t j = i + 1; j < bottleneck_resources.size();
             ++j) {
            p.addRow({std::string(toString(bottleneck_resources[i])) +
                          " & " + toString(bottleneck_resources[j]),
                      formatPercent(
                          r.pairs[BottleneckReport::pairIndex(i, j)])});
        }
    }
    p.print(os_);
}

void
ReportWriter::print(const PowerReport &r) const
{
    os_ << "== Fig. 9a: GPU power draw (W) ==\n";
    TextTable t(quantileHeader("power"));
    t.addRow(quantileRow("average", r.avg_watts, 0));
    t.addRow(quantileRow("maximum", r.max_watts, 0));
    t.print(os_);

    os_ << "== Fig. 9b: power-cap impact ==\n";
    TextTable c({"cap", "unimpacted", "impacted (max)",
                 "impacted (avg)"});
    for (const auto &cap : r.caps) {
        c.addRow({formatNumber(cap.cap_watts, 0) + " W",
                  formatPercent(cap.unimpacted),
                  formatPercent(cap.impacted_by_max),
                  formatPercent(cap.impacted_by_avg)});
    }
    c.print(os_);
}

void
ReportWriter::print(const UserBehaviorReport &r) const
{
    os_ << "== Fig. 10: per-user averages (" << r.users.size()
        << " users) ==\n";
    TextTable a(quantileHeader("average of user's jobs"));
    a.addRow(quantileRow("runtime (min)", r.avg_runtime_min, 0));
    a.addRow(quantileRow("SM util (%)", r.avg_sm_pct));
    a.addRow(quantileRow("memBW util (%)", r.avg_membw_pct));
    a.addRow(quantileRow("memsize util (%)", r.avg_memsize_pct));
    a.print(os_);

    os_ << "== Fig. 11: within-user variability ==\n";
    TextTable v(quantileHeader("CoV across user's jobs (%)"));
    v.addRow(quantileRow("runtime", r.runtime_cov_pct, 0));
    v.addRow(quantileRow("SM util", r.sm_cov_pct, 0));
    v.addRow(quantileRow("memBW util", r.membw_cov_pct, 0));
    v.addRow(quantileRow("memsize util", r.memsize_cov_pct, 0));
    v.print(os_);

    os_ << "top 5% of users submit " << formatPercent(r.top5_job_share)
        << " of jobs; top 20% submit "
        << formatPercent(r.top20_job_share) << "; median user submits "
        << formatNumber(r.median_jobs_per_user, 0) << " jobs\n";
}

void
ReportWriter::print(const CorrelationReport &r) const
{
    os_ << "== Fig. 12: Spearman correlation of user activity vs "
           "behaviour (" << r.users << " users) ==\n";
    TextTable t({"feature", "rho(#jobs)", "p", "rho(GPU-hours)", "p"});
    for (int f = 0; f < num_user_features; ++f) {
        const auto idx = static_cast<std::size_t>(f);
        const auto &cj = r.by_jobs.features[idx];
        const auto &ch = r.by_gpu_hours.features[idx];
        t.addRow({toString(static_cast<UserFeature>(f)),
                  formatNumber(cj.coefficient, 2),
                  formatNumber(cj.p_value, 3),
                  formatNumber(ch.coefficient, 2),
                  formatNumber(ch.p_value, 3)});
    }
    t.print(os_);
}

void
ReportWriter::print(const MultiGpuReport &r) const
{
    os_ << "== Fig. 13: job sizes ==\n";
    TextTable t({"size", "jobs", "GPU-hours", "median wait (s)"});
    for (int b = 0; b < num_size_buckets; ++b) {
        const auto i = static_cast<std::size_t>(b);
        t.addRow({sizeBucketName(b), formatPercent(r.job_fraction[i]),
                  formatPercent(r.hour_fraction[i]),
                  formatNumber(r.median_wait_s[i], 1)});
    }
    t.print(os_);
    os_ << "users with >=1 multi-GPU job: "
        << formatPercent(r.users_multi) << ", >=3 GPUs: "
        << formatPercent(r.users_3plus) << ", >=9 GPUs: "
        << formatPercent(r.users_9plus) << "\n"
        << "multi-GPU jobs with half+ GPUs idle: "
        << formatPercent(r.idle_gpu_job_fraction) << "\n";

    os_ << "== Fig. 14: utilization CoV across a job's GPUs (%) ==\n";
    TextTable v(quantileHeader("metric"));
    v.addRow(quantileRow("SM, all GPUs", r.sm_cov_all_pct, 0));
    v.addRow(quantileRow("memBW, all GPUs", r.membw_cov_all_pct, 0));
    v.addRow(quantileRow("memsize, all GPUs", r.memsize_cov_all_pct, 0));
    v.addRow(quantileRow("SM, active GPUs", r.sm_cov_active_pct, 0));
    v.addRow(quantileRow("memBW, active GPUs", r.membw_cov_active_pct,
                         0));
    v.addRow(quantileRow("memsize, active GPUs",
                         r.memsize_cov_active_pct, 0));
    v.print(os_);
}

void
ReportWriter::print(const LifecycleReport &r) const
{
    os_ << "== Fig. 15: development life-cycle mixes ==\n";
    TextTable t({"class", "jobs", "GPU-hours", "median runtime (min)"});
    for (int c = 0; c < num_lifecycles; ++c) {
        const auto i = static_cast<std::size_t>(c);
        t.addRow({toString(static_cast<Lifecycle>(c)),
                  formatPercent(r.job_mix[i]),
                  formatPercent(r.hour_mix[i]),
                  formatNumber(r.median_runtime_min[i], 0)});
    }
    t.print(os_);

    os_ << "== Fig. 16: utilization by class (%) ==\n";
    TextTable b({"class / metric", "q1", "median", "q3", "whisker lo",
                 "whisker hi", "n"});
    for (int c = 0; c < num_lifecycles; ++c) {
        const auto i = static_cast<std::size_t>(c);
        const std::string name = toString(static_cast<Lifecycle>(c));
        b.addRow(boxRow(name + " SM", r.sm_pct[i]));
        b.addRow(boxRow(name + " memBW", r.membw_pct[i]));
        b.addRow(boxRow(name + " memsize", r.memsize_pct[i]));
    }
    b.print(os_);

    os_ << "== Fig. 17: per-user class shares ==\n"
        << "users with mature job share < 40%: "
        << formatPercent(r.usersWithMatureJobShareBelow(0.40)) << "\n"
        << "users with mature GPU-hour share < 20%: "
        << formatPercent(r.usersWithMatureHourShareBelow(0.20)) << "\n"
        << "users with non-mature GPU-hour share > 60%: "
        << formatPercent(r.usersWithNonMatureHoursAbove(0.60)) << "\n";
}

void
ReportWriter::print(const TimelineReport &r) const
{
    os_ << "== Sec. II: fleet load timeline (" << r.bins.size()
        << " bins of " << formatDuration(r.bin_width) << ") ==\n"
        << "submission peak-to-mean: "
        << formatNumber(r.submission_peak_to_mean, 2) << "x, peak GPUs "
        << "busy: " << formatNumber(r.peak_gpus_busy, 0) << "\n";
    // A compact sparkline of daily submissions.
    double max_subs = 0.0;
    for (const auto &bin : r.bins)
        max_subs = std::max(max_subs,
                            static_cast<double>(bin.submissions));
    if (max_subs > 0.0) {
        const char *shades = " .:-=+*#%@";
        std::string strip;
        for (const auto &bin : r.bins) {
            const double level =
                static_cast<double>(bin.submissions) / max_subs;
            strip += shades[std::min(
                9, static_cast<int>(level * 10.0))];
        }
        os_ << "submissions/bin: [" << strip << "]\n";
    }
}

void
ReportWriter::printFullStudy(const Dataset &dataset) const
{
    print(TimelineAnalyzer().analyze(dataset));
    print(ServiceTimeAnalyzer().analyze(dataset));
    print(UtilizationAnalyzer().analyze(dataset));
    print(UtilizationAnalyzer().analyzeByInterface(dataset));
    print(PhaseAnalyzer().analyze(dataset));
    print(BottleneckAnalyzer().analyze(dataset));
    print(PowerAnalyzer().analyze(dataset));
    print(UserBehaviorAnalyzer().analyze(dataset));
    print(CorrelationAnalyzer().analyze(dataset));
    print(MultiGpuAnalyzer().analyze(dataset));
    print(LifecycleAnalyzer().analyze(dataset));
}

} // namespace aiwc::core
