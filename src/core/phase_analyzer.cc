#include "aiwc/core/phase_analyzer.hh"

#include <cmath>

#include "aiwc/obs/trace.hh"
#include "aiwc/stats/descriptive.hh"

namespace aiwc::core
{

PhaseReport
PhaseAnalyzer::analyze(const Dataset &dataset) const
{
    obs::AnalyzerScope scope("phase", dataset.gpuJobs().size());
    std::vector<double> active_frac, idle_cov, active_cov, sm_cov,
        membw_cov, memsize_cov;

    for (const JobRecord *job : dataset.gpuJobs()) {
        if (!job->has_timeseries)
            continue;
        const PhaseStats &ps = job->phases;
        active_frac.push_back(100.0 * ps.active_fraction);
        // covPercent is NaN for zero-mean series; interval lengths are
        // positive so that cannot trigger here, but the sampled
        // active-phase CoVs can (a metric the job never exercised) and
        // only finite values belong on the CDFs.
        auto push_finite = [](std::vector<double> &dst, double v) {
            if (std::isfinite(v))
                dst.push_back(v);
        };
        if (ps.idle_intervals.size() >= min_intervals_)
            push_finite(idle_cov, stats::covPercent(ps.idle_intervals));
        if (ps.active_intervals.size() >= min_intervals_)
            push_finite(active_cov,
                        stats::covPercent(ps.active_intervals));
        if (!ps.active_intervals.empty()) {
            push_finite(sm_cov, ps.active_sm_cov);
            push_finite(membw_cov, ps.active_membw_cov);
            push_finite(memsize_cov, ps.active_memsize_cov);
        }
    }

    PhaseReport report;
    report.jobs = active_frac.size();
    report.active_fraction_pct =
        stats::EmpiricalCdf(std::move(active_frac));
    report.idle_interval_cov_pct = stats::EmpiricalCdf(std::move(idle_cov));
    report.active_interval_cov_pct =
        stats::EmpiricalCdf(std::move(active_cov));
    report.active_sm_cov_pct = stats::EmpiricalCdf(std::move(sm_cov));
    report.active_membw_cov_pct =
        stats::EmpiricalCdf(std::move(membw_cov));
    report.active_memsize_cov_pct =
        stats::EmpiricalCdf(std::move(memsize_cov));
    return report;
}

} // namespace aiwc::core
