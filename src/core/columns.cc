#include "aiwc/core/columns.hh"

namespace aiwc::core
{

void
ColumnTable::append(const JobRecord &record)
{
    job_id_.push_back(record.id);
    user_idx_.push_back(users_.intern(record.user));
    type_idx_.push_back(job_types_.intern(
        packJobType(record.interface, record.terminal)));
    interface_.push_back(static_cast<std::uint8_t>(record.interface));
    terminal_.push_back(static_cast<std::uint8_t>(record.terminal));
    true_class_.push_back(static_cast<std::uint8_t>(record.true_class));
    has_ts_.push_back(record.has_timeseries ? 1 : 0);
    submit_.push_back(record.submit_time);
    start_.push_back(record.start_time);
    end_.push_back(record.end_time);
    walltime_.push_back(record.walltime_limit);
    gpus_.push_back(record.gpus);
    cpu_slots_.push_back(record.cpu_slots);
    ram_gb_.push_back(record.ram_gb);

    // Derived columns use the JobRecord member functions themselves,
    // so a columnar gather and a row walk can never disagree by a ULP.
    runtime_s_.push_back(record.runTime());
    wait_s_.push_back(record.waitTime());
    gpu_hours_.push_back(record.gpuHours());
    for (int r = 0; r < num_resources; ++r) {
        const auto res = static_cast<Resource>(r);
        const auto i = static_cast<std::size_t>(r);
        mean_util_[i].push_back(record.meanUtilization(res));
        max_util_[i].push_back(record.maxUtilization(res));
    }
}

} // namespace aiwc::core
