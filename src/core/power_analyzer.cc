#include "aiwc/core/power_analyzer.hh"

#include "aiwc/common/parallel.hh"
#include "aiwc/obs/trace.hh"

namespace aiwc::core
{

namespace
{

/** Per-shard accumulator of the avg/max per-job power series. */
struct PowerSeries
{
    std::vector<double> avg, mx;
};

} // namespace

PowerReport
PowerAnalyzer::analyze(const Dataset &dataset) const
{
    const auto jobs = dataset.gpuJobs();
    obs::AnalyzerScope scope("power", jobs.size());
    auto series = parallelReduce(
        globalPool(), jobs.size(), PowerSeries{},
        [&](PowerSeries &acc, std::size_t i) {
            acc.avg.push_back(jobs[i]->meanPowerWatts());
            acc.mx.push_back(jobs[i]->maxPowerWatts());
        },
        [](PowerSeries &into, PowerSeries &&from) {
            into.avg.insert(into.avg.end(), from.avg.begin(),
                            from.avg.end());
            into.mx.insert(into.mx.end(), from.mx.begin(),
                           from.mx.end());
        });

    PowerReport report;
    report.avg_watts = stats::EmpiricalCdf(std::move(series.avg));
    report.max_watts = stats::EmpiricalCdf(std::move(series.mx));

    for (double cap : caps_) {
        PowerCapImpact impact;
        impact.cap_watts = cap;
        impact.unimpacted = report.max_watts.at(cap);
        impact.impacted_by_max = report.max_watts.tail(cap);
        impact.impacted_by_avg = report.avg_watts.tail(cap);
        report.caps.push_back(impact);
    }
    return report;
}

} // namespace aiwc::core
