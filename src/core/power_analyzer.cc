#include "aiwc/core/power_analyzer.hh"

namespace aiwc::core
{

PowerReport
PowerAnalyzer::analyze(const Dataset &dataset) const
{
    std::vector<double> avg, mx;
    for (const JobRecord *job : dataset.gpuJobs()) {
        avg.push_back(job->meanPowerWatts());
        mx.push_back(job->maxPowerWatts());
    }

    PowerReport report;
    report.avg_watts = stats::EmpiricalCdf(std::move(avg));
    report.max_watts = stats::EmpiricalCdf(std::move(mx));

    for (double cap : caps_) {
        PowerCapImpact impact;
        impact.cap_watts = cap;
        impact.unimpacted = report.max_watts.at(cap);
        impact.impacted_by_max = report.max_watts.tail(cap);
        impact.impacted_by_avg = report.avg_watts.tail(cap);
        report.caps.push_back(impact);
    }
    return report;
}

} // namespace aiwc::core
