#include "aiwc/core/power_analyzer.hh"

#include "aiwc/obs/trace.hh"
#include "aiwc/stats/kernels.hh"

namespace aiwc::core
{

PowerReport
PowerAnalyzer::analyze(const Dataset &dataset) const
{
    // meanPowerWatts/maxPowerWatts are the Power utilization columns,
    // so both series are plain columnar gathers.
    const ColumnTable &cols = dataset.columns();
    const auto idx = dataset.gpuJobIndices();
    obs::AnalyzerScope scope("power", idx.size());

    PowerReport report;
    report.avg_watts = stats::EmpiricalCdf(
        stats::gather(cols.meanUtil(Resource::Power), idx));
    report.max_watts = stats::EmpiricalCdf(
        stats::gather(cols.maxUtil(Resource::Power), idx));

    for (double cap : caps_) {
        PowerCapImpact impact;
        impact.cap_watts = cap;
        impact.unimpacted = report.max_watts.at(cap);
        impact.impacted_by_max = report.max_watts.tail(cap);
        impact.impacted_by_avg = report.avg_watts.tail(cap);
        report.caps.push_back(impact);
    }
    return report;
}

} // namespace aiwc::core
