#include "aiwc/core/bottleneck_analyzer.hh"

#include <algorithm>

#include "aiwc/base/logging.hh"
#include "aiwc/common/parallel.hh"
#include "aiwc/obs/trace.hh"

namespace aiwc::core
{

std::size_t
BottleneckReport::pairIndex(std::size_t i, std::size_t j)
{
    AIWC_ASSERT(i < j && j < bottleneck_resources.size(),
                "bad bottleneck pair (", i, ",", j, ")");
    // Row-major upper triangle of a 5x5 matrix without the diagonal.
    return i * (2 * bottleneck_resources.size() - i - 1) / 2 + (j - i - 1);
}

namespace
{
std::size_t
positionOf(Resource r)
{
    for (std::size_t i = 0; i < bottleneck_resources.size(); ++i)
        if (bottleneck_resources[i] == r)
            return i;
    panic("resource has no bottleneck position");
}
} // namespace

double
BottleneckReport::single_of(Resource r) const
{
    return single[positionOf(r)];
}

double
BottleneckReport::pair_of(Resource a, Resource b) const
{
    auto i = positionOf(a);
    auto j = positionOf(b);
    if (i > j)
        std::swap(i, j);
    return pairs[pairIndex(i, j)];
}

BottleneckReport
BottleneckAnalyzer::analyze(const Dataset &dataset) const
{
    BottleneckReport report;
    const ColumnTable &cols = dataset.columns();
    const auto idx = dataset.gpuJobIndices();
    obs::AnalyzerScope scope("bottleneck", idx.size());
    report.jobs = idx.size();
    if (idx.empty())
        return report;

    // Columnar pass: five contiguous max-utilization columns, indexed
    // through the filtered rows. Saturation counts are integer-valued
    // doubles, so shard-order addition is exact and thread-count
    // invariant.
    std::array<std::span<const double>, 5> max_util;
    for (std::size_t i = 0; i < bottleneck_resources.size(); ++i)
        max_util[i] = cols.maxUtil(bottleneck_resources[i]);
    struct Counts
    {
        std::array<double, 5> single{};
        std::array<double, 10> pairs{};
    };
    const Counts counts = parallelReduce(
        globalPool(), idx.size(), Counts{},
        [&](Counts &acc, std::size_t k) {
            const std::uint32_t r = idx[k];
            std::array<bool, 5> hit{};
            for (std::size_t i = 0; i < max_util.size(); ++i)
                hit[i] = max_util[i][r] >= threshold_;
            for (std::size_t i = 0; i < hit.size(); ++i) {
                if (!hit[i])
                    continue;
                acc.single[i] += 1.0;
                for (std::size_t j = i + 1; j < hit.size(); ++j)
                    if (hit[j])
                        acc.pairs[BottleneckReport::pairIndex(i, j)] +=
                            1.0;
            }
        },
        [](Counts &into, Counts &&from) {
            for (std::size_t i = 0; i < into.single.size(); ++i)
                into.single[i] += from.single[i];
            for (std::size_t i = 0; i < into.pairs.size(); ++i)
                into.pairs[i] += from.pairs[i];
        });
    std::copy(counts.single.begin(), counts.single.end(),
              report.single.begin());
    std::copy(counts.pairs.begin(), counts.pairs.end(),
              report.pairs.begin());
    const auto n = static_cast<double>(idx.size());
    for (auto &s : report.single)
        s /= n;
    for (auto &p : report.pairs)
        p /= n;
    return report;
}

} // namespace aiwc::core
