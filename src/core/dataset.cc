#include "aiwc/core/dataset.hh"

#include "aiwc/common/csv.hh"
#include "aiwc/common/parallel.hh"
#include "aiwc/common/table.hh"

namespace aiwc::core
{

namespace
{

using RecordPtrs = std::vector<const JobRecord *>;

/** Shard-order concatenation — the merge step for filter passes. */
void
appendShard(RecordPtrs &into, RecordPtrs &&from)
{
    into.insert(into.end(), from.begin(), from.end());
}

} // namespace

Dataset::Dataset(std::vector<JobRecord> records)
    : records_(std::move(records))
{
    for (const JobRecord &r : records_)
        cols_.append(r);
}

void
Dataset::add(JobRecord record)
{
    cols_.append(record);
    records_.push_back(std::move(record));
}

std::vector<std::uint32_t>
Dataset::gpuJobIndices(Seconds min_runtime) const
{
    using Indices = std::vector<std::uint32_t>;
    const std::span<const std::int32_t> gpus = cols_.gpus();
    const std::span<const double> runtime = cols_.runtimeS();
    return parallelReduce(
        globalPool(), cols_.rows(), Indices{},
        [&](Indices &acc, std::size_t i) {
            if (gpus[i] > 0 && runtime[i] >= min_runtime)
                acc.push_back(static_cast<std::uint32_t>(i));
        },
        [](Indices &into, Indices &&from) {
            into.insert(into.end(), from.begin(), from.end());
        });
}

std::vector<std::uint32_t>
Dataset::cpuJobIndices() const
{
    using Indices = std::vector<std::uint32_t>;
    const std::span<const std::int32_t> gpus = cols_.gpus();
    return parallelReduce(
        globalPool(), cols_.rows(), Indices{},
        [&](Indices &acc, std::size_t i) {
            if (gpus[i] <= 0)
                acc.push_back(static_cast<std::uint32_t>(i));
        },
        [](Indices &into, Indices &&from) {
            into.insert(into.end(), from.begin(), from.end());
        });
}

std::vector<std::span<const JobRecord>>
Dataset::shards() const
{
    const auto ranges = detail::shardRanges(records_.size());
    std::vector<std::span<const JobRecord>> out;
    out.reserve(ranges.size());
    for (const auto &r : ranges)
        out.push_back(std::span<const JobRecord>(records_)
                          .subspan(r.begin, r.end - r.begin));
    return out;
}

std::vector<const JobRecord *>
Dataset::gpuJobs(Seconds min_runtime) const
{
    // Filter on the columns (two contiguous arrays instead of a
    // record walk), then materialize the row view for callers.
    const auto idx = gpuJobIndices(min_runtime);
    RecordPtrs out(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        out[i] = &records_[idx[i]];
    return out;
}

std::vector<const JobRecord *>
Dataset::cpuJobs() const
{
    const auto idx = cpuJobIndices();
    RecordPtrs out(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        out[i] = &records_[idx[i]];
    return out;
}

std::vector<const JobRecord *>
Dataset::gpuJobsWhere(const std::function<bool(const JobRecord &)> &pred,
                      Seconds min_runtime) const
{
    return parallelReduce(
        globalPool(), records_.size(), RecordPtrs{},
        [&](RecordPtrs &acc, std::size_t i) {
            const JobRecord &r = records_[i];
            if (r.isGpuJob() && r.runTime() >= min_runtime && pred(r))
                acc.push_back(&r);
        },
        appendShard);
}

std::map<UserId, std::vector<const JobRecord *>>
Dataset::gpuJobsByUser(Seconds min_runtime) const
{
    using ByUser = std::map<UserId, std::vector<const JobRecord *>>;
    return parallelReduce(
        globalPool(), records_.size(), ByUser{},
        [&](ByUser &acc, std::size_t i) {
            const JobRecord &r = records_[i];
            if (r.isGpuJob() && r.runTime() >= min_runtime)
                acc[r.user].push_back(&r);
        },
        [](ByUser &into, ByUser &&from) {
            // Shard-order merge keeps each user's jobs in record order.
            for (auto &[user, jobs] : from) {
                auto &dst = into[user];
                dst.insert(dst.end(), jobs.begin(), jobs.end());
            }
        });
}

std::size_t
Dataset::uniqueUsers() const
{
    // The interned user table has already deduplicated on append.
    return cols_.users().size();
}

double
Dataset::totalGpuHours(Seconds min_runtime) const
{
    const std::span<const std::int32_t> gpus = cols_.gpus();
    const std::span<const double> runtime = cols_.runtimeS();
    const std::span<const double> hours = cols_.gpuHours();
    return parallelReduce(
        globalPool(), cols_.rows(), 0.0,
        [&](double &acc, std::size_t i) {
            if (gpus[i] > 0 && runtime[i] >= min_runtime)
                acc += hours[i];
        },
        [](double &into, double &&from) { into += from; });
}

void
Dataset::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os, {"job_id", "user", "interface", "terminal",
                       "submit_s", "start_s", "end_s", "gpus",
                       "cpu_slots", "ram_gb", "sm_mean", "sm_max",
                       "membw_mean", "membw_max", "memsize_mean",
                       "memsize_max", "pcie_tx_mean", "pcie_rx_mean",
                       "power_mean_w", "power_max_w"});
    for (const auto &r : records_) {
        csv.writeRow({
            formatNumber(r.id, 0),
            formatNumber(r.user, 0),
            toString(r.interface),
            toString(r.terminal),
            formatNumber(r.submit_time, 1),
            formatNumber(r.start_time, 1),
            formatNumber(r.end_time, 1),
            formatNumber(r.gpus, 0),
            formatNumber(r.cpu_slots, 0),
            formatNumber(r.ram_gb, 1),
            formatNumber(r.meanUtilization(Resource::Sm), 4),
            formatNumber(r.maxUtilization(Resource::Sm), 4),
            formatNumber(r.meanUtilization(Resource::MemoryBw), 4),
            formatNumber(r.maxUtilization(Resource::MemoryBw), 4),
            formatNumber(r.meanUtilization(Resource::MemorySize), 4),
            formatNumber(r.maxUtilization(Resource::MemorySize), 4),
            formatNumber(r.meanUtilization(Resource::PcieTx), 4),
            formatNumber(r.meanUtilization(Resource::PcieRx), 4),
            formatNumber(r.meanPowerWatts(), 1),
            formatNumber(r.maxPowerWatts(), 1),
        });
    }
}

} // namespace aiwc::core
