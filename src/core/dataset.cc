#include "aiwc/core/dataset.hh"

#include <unordered_set>

#include "aiwc/common/csv.hh"
#include "aiwc/common/table.hh"

namespace aiwc::core
{

Dataset::Dataset(std::vector<JobRecord> records)
    : records_(std::move(records))
{
}

void
Dataset::add(JobRecord record)
{
    records_.push_back(std::move(record));
}

std::vector<const JobRecord *>
Dataset::gpuJobs(Seconds min_runtime) const
{
    std::vector<const JobRecord *> out;
    out.reserve(records_.size());
    for (const auto &r : records_)
        if (r.isGpuJob() && r.runTime() >= min_runtime)
            out.push_back(&r);
    return out;
}

std::vector<const JobRecord *>
Dataset::cpuJobs() const
{
    std::vector<const JobRecord *> out;
    for (const auto &r : records_)
        if (!r.isGpuJob())
            out.push_back(&r);
    return out;
}

std::vector<const JobRecord *>
Dataset::gpuJobsWhere(const std::function<bool(const JobRecord &)> &pred,
                      Seconds min_runtime) const
{
    std::vector<const JobRecord *> out;
    for (const auto &r : records_)
        if (r.isGpuJob() && r.runTime() >= min_runtime && pred(r))
            out.push_back(&r);
    return out;
}

std::map<UserId, std::vector<const JobRecord *>>
Dataset::gpuJobsByUser(Seconds min_runtime) const
{
    std::map<UserId, std::vector<const JobRecord *>> out;
    for (const auto &r : records_)
        if (r.isGpuJob() && r.runTime() >= min_runtime)
            out[r.user].push_back(&r);
    return out;
}

std::size_t
Dataset::uniqueUsers() const
{
    std::unordered_set<UserId> users;
    for (const auto &r : records_)
        users.insert(r.user);
    return users.size();
}

double
Dataset::totalGpuHours(Seconds min_runtime) const
{
    double acc = 0.0;
    for (const auto &r : records_)
        if (r.isGpuJob() && r.runTime() >= min_runtime)
            acc += r.gpuHours();
    return acc;
}

void
Dataset::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os, {"job_id", "user", "interface", "terminal",
                       "submit_s", "start_s", "end_s", "gpus",
                       "cpu_slots", "ram_gb", "sm_mean", "sm_max",
                       "membw_mean", "membw_max", "memsize_mean",
                       "memsize_max", "pcie_tx_mean", "pcie_rx_mean",
                       "power_mean_w", "power_max_w"});
    for (const auto &r : records_) {
        csv.writeRow({
            formatNumber(r.id, 0),
            formatNumber(r.user, 0),
            toString(r.interface),
            toString(r.terminal),
            formatNumber(r.submit_time, 1),
            formatNumber(r.start_time, 1),
            formatNumber(r.end_time, 1),
            formatNumber(r.gpus, 0),
            formatNumber(r.cpu_slots, 0),
            formatNumber(r.ram_gb, 1),
            formatNumber(r.meanUtilization(Resource::Sm), 4),
            formatNumber(r.maxUtilization(Resource::Sm), 4),
            formatNumber(r.meanUtilization(Resource::MemoryBw), 4),
            formatNumber(r.maxUtilization(Resource::MemoryBw), 4),
            formatNumber(r.meanUtilization(Resource::MemorySize), 4),
            formatNumber(r.maxUtilization(Resource::MemorySize), 4),
            formatNumber(r.meanUtilization(Resource::PcieTx), 4),
            formatNumber(r.meanUtilization(Resource::PcieRx), 4),
            formatNumber(r.meanPowerWatts(), 1),
            formatNumber(r.maxPowerWatts(), 1),
        });
    }
}

} // namespace aiwc::core
