#include "aiwc/core/dataset.hh"

#include <unordered_set>

#include "aiwc/common/csv.hh"
#include "aiwc/common/parallel.hh"
#include "aiwc/common/table.hh"

namespace aiwc::core
{

namespace
{

using RecordPtrs = std::vector<const JobRecord *>;

/** Shard-order concatenation — the merge step for filter passes. */
void
appendShard(RecordPtrs &into, RecordPtrs &&from)
{
    into.insert(into.end(), from.begin(), from.end());
}

} // namespace

Dataset::Dataset(std::vector<JobRecord> records)
    : records_(std::move(records))
{
}

void
Dataset::add(JobRecord record)
{
    records_.push_back(std::move(record));
}

std::vector<std::span<const JobRecord>>
Dataset::shards() const
{
    const auto ranges = detail::shardRanges(records_.size());
    std::vector<std::span<const JobRecord>> out;
    out.reserve(ranges.size());
    for (const auto &r : ranges)
        out.push_back(std::span<const JobRecord>(records_)
                          .subspan(r.begin, r.end - r.begin));
    return out;
}

std::vector<const JobRecord *>
Dataset::gpuJobs(Seconds min_runtime) const
{
    return parallelReduce(
        globalPool(), records_.size(), RecordPtrs{},
        [&](RecordPtrs &acc, std::size_t i) {
            const JobRecord &r = records_[i];
            if (r.isGpuJob() && r.runTime() >= min_runtime)
                acc.push_back(&r);
        },
        appendShard);
}

std::vector<const JobRecord *>
Dataset::cpuJobs() const
{
    return parallelReduce(
        globalPool(), records_.size(), RecordPtrs{},
        [&](RecordPtrs &acc, std::size_t i) {
            const JobRecord &r = records_[i];
            if (!r.isGpuJob())
                acc.push_back(&r);
        },
        appendShard);
}

std::vector<const JobRecord *>
Dataset::gpuJobsWhere(const std::function<bool(const JobRecord &)> &pred,
                      Seconds min_runtime) const
{
    return parallelReduce(
        globalPool(), records_.size(), RecordPtrs{},
        [&](RecordPtrs &acc, std::size_t i) {
            const JobRecord &r = records_[i];
            if (r.isGpuJob() && r.runTime() >= min_runtime && pred(r))
                acc.push_back(&r);
        },
        appendShard);
}

std::map<UserId, std::vector<const JobRecord *>>
Dataset::gpuJobsByUser(Seconds min_runtime) const
{
    using ByUser = std::map<UserId, std::vector<const JobRecord *>>;
    return parallelReduce(
        globalPool(), records_.size(), ByUser{},
        [&](ByUser &acc, std::size_t i) {
            const JobRecord &r = records_[i];
            if (r.isGpuJob() && r.runTime() >= min_runtime)
                acc[r.user].push_back(&r);
        },
        [](ByUser &into, ByUser &&from) {
            // Shard-order merge keeps each user's jobs in record order.
            for (auto &[user, jobs] : from) {
                auto &dst = into[user];
                dst.insert(dst.end(), jobs.begin(), jobs.end());
            }
        });
}

std::size_t
Dataset::uniqueUsers() const
{
    using Users = std::unordered_set<UserId>;
    // Param names deliberately differ from the ordered merges above:
    // aiwc-lint tracks unordered declarations by name, and only .size()
    // of this set is ever observed.
    return parallelReduce(
               globalPool(), records_.size(), Users{},
               [&](Users &acc, std::size_t i) {
                   acc.insert(records_[i].user);
               },
               [](Users &all, Users &&shard) {
                   all.insert(shard.begin(), shard.end());
               })
        .size();
}

double
Dataset::totalGpuHours(Seconds min_runtime) const
{
    return parallelReduce(
        globalPool(), records_.size(), 0.0,
        [&](double &acc, std::size_t i) {
            const JobRecord &r = records_[i];
            if (r.isGpuJob() && r.runTime() >= min_runtime)
                acc += r.gpuHours();
        },
        [](double &into, double &&from) { into += from; });
}

void
Dataset::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os, {"job_id", "user", "interface", "terminal",
                       "submit_s", "start_s", "end_s", "gpus",
                       "cpu_slots", "ram_gb", "sm_mean", "sm_max",
                       "membw_mean", "membw_max", "memsize_mean",
                       "memsize_max", "pcie_tx_mean", "pcie_rx_mean",
                       "power_mean_w", "power_max_w"});
    for (const auto &r : records_) {
        csv.writeRow({
            formatNumber(r.id, 0),
            formatNumber(r.user, 0),
            toString(r.interface),
            toString(r.terminal),
            formatNumber(r.submit_time, 1),
            formatNumber(r.start_time, 1),
            formatNumber(r.end_time, 1),
            formatNumber(r.gpus, 0),
            formatNumber(r.cpu_slots, 0),
            formatNumber(r.ram_gb, 1),
            formatNumber(r.meanUtilization(Resource::Sm), 4),
            formatNumber(r.maxUtilization(Resource::Sm), 4),
            formatNumber(r.meanUtilization(Resource::MemoryBw), 4),
            formatNumber(r.maxUtilization(Resource::MemoryBw), 4),
            formatNumber(r.meanUtilization(Resource::MemorySize), 4),
            formatNumber(r.maxUtilization(Resource::MemorySize), 4),
            formatNumber(r.meanUtilization(Resource::PcieTx), 4),
            formatNumber(r.meanUtilization(Resource::PcieRx), 4),
            formatNumber(r.meanPowerWatts(), 1),
            formatNumber(r.maxPowerWatts(), 1),
        });
    }
}

} // namespace aiwc::core
