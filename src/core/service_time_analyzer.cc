#include "aiwc/core/service_time_analyzer.hh"

#include "aiwc/common/parallel.hh"
#include "aiwc/obs/trace.hh"
#include "aiwc/stats/kernels.hh"

namespace aiwc::core
{

namespace
{

/**
 * wait / service share in percent, slot-addressed like the gather
 * kernels: out[i] = 100 * wait[r] / (end[r] - submit[r]) for r =
 * idx[i], guarding zero service time. The arithmetic mirrors
 * JobRecord::waitTime / serviceTime exactly.
 */
std::vector<double>
waitSharePct(const ColumnTable &cols, std::span<const std::uint32_t> idx)
{
    const std::span<const double> wait = cols.waitS();
    const std::span<const double> submit = cols.submitTime();
    const std::span<const double> end = cols.endTime();
    std::vector<double> out(idx.size());
    parallelFor(globalPool(), idx.size(), [&](std::size_t i) {
        const std::uint32_t r = idx[i];
        const double service = end[r] - submit[r];
        out[i] = service > 0.0 ? 100.0 * wait[r] / service : 0.0;
    });
    return out;
}

} // namespace

ServiceTimeReport
ServiceTimeAnalyzer::analyze(const Dataset &dataset) const
{
    obs::AnalyzerScope scope("service_time", dataset.size());
    const ColumnTable &cols = dataset.columns();
    const auto gpu = dataset.gpuJobIndices();
    const auto cpu = dataset.cpuJobIndices();

    ServiceTimeReport report;
    report.gpu_runtime_min =
        stats::EmpiricalCdf(stats::gatherDivided(cols.runtimeS(), gpu, 60.0));
    report.cpu_runtime_min =
        stats::EmpiricalCdf(stats::gatherDivided(cols.runtimeS(), cpu, 60.0));
    report.gpu_wait_s = stats::EmpiricalCdf(stats::gather(cols.waitS(), gpu));
    report.cpu_wait_s = stats::EmpiricalCdf(stats::gather(cols.waitS(), cpu));
    report.gpu_wait_pct = stats::EmpiricalCdf(waitSharePct(cols, gpu));
    report.cpu_wait_pct = stats::EmpiricalCdf(waitSharePct(cols, cpu));
    return report;
}

} // namespace aiwc::core
