#include "aiwc/core/service_time_analyzer.hh"

namespace aiwc::core
{

ServiceTimeReport
ServiceTimeAnalyzer::analyze(const Dataset &dataset) const
{
    std::vector<double> gpu_rt, cpu_rt, gpu_wait, cpu_wait, gpu_pct,
        cpu_pct;

    for (const JobRecord *job : dataset.gpuJobs()) {
        gpu_rt.push_back(job->runTime() / 60.0);
        gpu_wait.push_back(job->waitTime());
        const double service = job->serviceTime();
        gpu_pct.push_back(service > 0.0
                              ? 100.0 * job->waitTime() / service
                              : 0.0);
    }
    for (const JobRecord *job : dataset.cpuJobs()) {
        cpu_rt.push_back(job->runTime() / 60.0);
        cpu_wait.push_back(job->waitTime());
        const double service = job->serviceTime();
        cpu_pct.push_back(service > 0.0
                              ? 100.0 * job->waitTime() / service
                              : 0.0);
    }

    ServiceTimeReport report;
    report.gpu_runtime_min = stats::EmpiricalCdf(std::move(gpu_rt));
    report.cpu_runtime_min = stats::EmpiricalCdf(std::move(cpu_rt));
    report.gpu_wait_s = stats::EmpiricalCdf(std::move(gpu_wait));
    report.cpu_wait_s = stats::EmpiricalCdf(std::move(cpu_wait));
    report.gpu_wait_pct = stats::EmpiricalCdf(std::move(gpu_pct));
    report.cpu_wait_pct = stats::EmpiricalCdf(std::move(cpu_pct));
    return report;
}

} // namespace aiwc::core
