#include "aiwc/core/service_time_analyzer.hh"

#include "aiwc/common/parallel.hh"
#include "aiwc/obs/trace.hh"

namespace aiwc::core
{

namespace
{

/** Per-shard accumulator of one population's service-time series. */
struct ServiceSeries
{
    std::vector<double> runtime_min, wait_s, wait_pct;
};

/** Fold one job's runtime/wait/wait-share into the accumulator. */
void
foldJob(ServiceSeries &acc, const JobRecord *job)
{
    acc.runtime_min.push_back(job->runTime() / 60.0);
    acc.wait_s.push_back(job->waitTime());
    const double service = job->serviceTime();
    acc.wait_pct.push_back(
        service > 0.0 ? 100.0 * job->waitTime() / service : 0.0);
}

ServiceSeries
collect(const std::vector<const JobRecord *> &jobs)
{
    return parallelReduce(
        globalPool(), jobs.size(), ServiceSeries{},
        [&](ServiceSeries &acc, std::size_t i) { foldJob(acc, jobs[i]); },
        [](ServiceSeries &into, ServiceSeries &&from) {
            auto concat = [](std::vector<double> &dst,
                             std::vector<double> &src) {
                dst.insert(dst.end(), src.begin(), src.end());
            };
            concat(into.runtime_min, from.runtime_min);
            concat(into.wait_s, from.wait_s);
            concat(into.wait_pct, from.wait_pct);
        });
}

} // namespace

ServiceTimeReport
ServiceTimeAnalyzer::analyze(const Dataset &dataset) const
{
    obs::AnalyzerScope scope("service_time", dataset.size());
    ServiceSeries gpu = collect(dataset.gpuJobs());
    ServiceSeries cpu = collect(dataset.cpuJobs());

    ServiceTimeReport report;
    report.gpu_runtime_min =
        stats::EmpiricalCdf(std::move(gpu.runtime_min));
    report.cpu_runtime_min =
        stats::EmpiricalCdf(std::move(cpu.runtime_min));
    report.gpu_wait_s = stats::EmpiricalCdf(std::move(gpu.wait_s));
    report.cpu_wait_s = stats::EmpiricalCdf(std::move(cpu.wait_s));
    report.gpu_wait_pct = stats::EmpiricalCdf(std::move(gpu.wait_pct));
    report.cpu_wait_pct = stats::EmpiricalCdf(std::move(cpu.wait_pct));
    return report;
}

} // namespace aiwc::core
