#include "aiwc/telemetry/power_model.hh"

#include <algorithm>

#include "aiwc/base/check.hh"

namespace aiwc::telemetry
{

PowerModel::PowerModel(const PowerParams &params) : params_(params)
{
    AIWC_CHECK(params.tdp_watts > params.idle_watts,
                "TDP must exceed idle draw");
}

double
PowerModel::expectedWatts(double sm, double membw, double efficiency) const
{
    const double load = params_.sm_weight * std::clamp(sm, 0.0, 1.0) +
                        params_.membw_weight * std::clamp(membw, 0.0, 1.0);
    const double watts =
        params_.idle_watts +
        load * efficiency * (params_.tdp_watts - params_.idle_watts);
    return std::clamp(watts, 0.0, params_.tdp_watts);
}

double
PowerModel::sampleWatts(double sm, double membw, double efficiency,
                        Rng &rng) const
{
    const double base = expectedWatts(sm, membw, efficiency);
    const double noisy =
        base + rng.gaussian(0.0, params_.sample_noise_watts);
    return std::clamp(noisy, 0.8 * params_.idle_watts, params_.tdp_watts);
}

} // namespace aiwc::telemetry
