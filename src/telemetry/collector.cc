#include "aiwc/telemetry/collector.hh"

#include <algorithm>

#include "aiwc/base/check.hh"

namespace aiwc::telemetry
{

void
NodeSpool::open(JobId job, NodeId node)
{
    const Key key{job, node};
    AIWC_CHECK(streams_.find(key) == streams_.end(),
                "spool stream already open for job ", job, " node ", node);
    streams_.emplace(key, 0);
}

void
NodeSpool::append(JobId job, NodeId node, std::uint64_t bytes)
{
    const Key key{job, node};
    const auto it = streams_.find(key);
    AIWC_CHECK(it != streams_.end(),
                "append to unopened spool stream, job ", job);
    it->second += bytes;
    auto &occ = per_node_[node];
    occ += bytes;
    peak_ = std::max(peak_, occ);
}

std::uint64_t
NodeSpool::drain(JobId job, NodeId node)
{
    const Key key{job, node};
    const auto it = streams_.find(key);
    AIWC_CHECK(it != streams_.end(),
                "drain of unopened spool stream, job ", job);
    const std::uint64_t bytes = it->second;
    streams_.erase(it);
    auto node_it = per_node_.find(node);
    AIWC_CHECK(node_it != per_node_.end() && node_it->second >= bytes,
                "spool occupancy underflow on node ", node);
    node_it->second -= bytes;
    return bytes;
}

std::uint64_t
NodeSpool::nodeOccupancy(NodeId node) const
{
    const auto it = per_node_.find(node);
    return it == per_node_.end() ? 0 : it->second;
}

void
EpilogCollector::onProlog(JobId job, const std::vector<NodeId> &nodes)
{
    AIWC_CHECK(!nodes.empty(), "job ", job, " runs on no nodes");
    AIWC_CHECK(nodes_of_.find(job) == nodes_of_.end(),
                "prolog ran twice for job ", job);
    for (NodeId n : nodes)
        spool_->open(job, n);
    nodes_of_.emplace(job, nodes);
}

void
EpilogCollector::recordSamples(JobId job, std::uint64_t bytes)
{
    const auto it = nodes_of_.find(job);
    AIWC_CHECK(it != nodes_of_.end(), "samples for unmonitored job ", job);
    const auto &nodes = it->second;
    const std::uint64_t share = bytes / nodes.size();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        // The first node absorbs the rounding remainder.
        const std::uint64_t extra =
            i == 0 ? bytes - share * nodes.size() : 0;
        spool_->append(job, nodes[i], share + extra);
    }
}

void
EpilogCollector::onEpilog(JobId job)
{
    const auto it = nodes_of_.find(job);
    AIWC_CHECK(it != nodes_of_.end(), "epilog for unmonitored job ", job);
    for (NodeId n : it->second)
        central_bytes_ += spool_->drain(job, n);
    nodes_of_.erase(it);
    ++jobs_collected_;
}

} // namespace aiwc::telemetry
