#include "aiwc/telemetry/phase_model.hh"

#include <algorithm>
#include <cmath>

#include "aiwc/base/check.hh"

namespace aiwc::telemetry
{

PhaseModel::PhaseModel(const JobProfile &profile) : profile_(profile)
{
    clamped_af_ = std::clamp(profile.active_fraction, 0.002, 0.998);
}

double
PhaseModel::impliedIdleMedian() const
{
    // Expected interval length of LogNormal(median m, sigma s) is
    // m * exp(s^2/2). Choosing the idle median so the *expected*
    // active:idle time ratio equals af : (1-af) requires correcting
    // for the two sigmas.
    const double af = clamped_af_;
    const double correction =
        std::exp((profile_.active_len_sigma * profile_.active_len_sigma -
                  profile_.idle_len_sigma * profile_.idle_len_sigma) / 2.0);
    return profile_.active_len_median_s * (1.0 - af) / af * correction;
}

std::vector<Phase>
PhaseModel::generate(Seconds duration, Rng &rng) const
{
    AIWC_CHECK(duration > 0.0, "phase generation needs a positive run");
    std::vector<Phase> out;

    const double idle_median = impliedIdleMedian();
    const double mu_a = std::log(profile_.active_len_median_s);
    const double mu_i = std::log(std::max(idle_median, 1e-3));

    bool active = rng.chance(clamped_af_);
    Seconds t = 0.0;
    while (t < duration) {
        const double mu = active ? mu_a : mu_i;
        const double sigma = active ? profile_.active_len_sigma
                                    : profile_.idle_len_sigma;
        double len = std::exp(mu + sigma * rng.gaussian());
        len = std::max(len, 0.1);  // one sampler tick at minimum
        if (t + len > duration)
            len = duration - t;
        if (len > 0.0)
            out.push_back(Phase{active, len});
        t += len;
        active = !active;
    }
    AIWC_CHECK(!out.empty(), "empty phase sequence");
    return out;
}

double
PhaseModel::activeFraction(const std::vector<Phase> &phases)
{
    double active = 0.0, total = 0.0;
    for (const auto &p : phases) {
        total += p.length;
        if (p.active)
            active += p.length;
    }
    return total > 0.0 ? active / total : 0.0;
}

} // namespace aiwc::telemetry
