#include "aiwc/telemetry/cpu_sampler.hh"

#include <algorithm>

#include "aiwc/base/check.hh"
#include "aiwc/telemetry/phase_model.hh"

namespace aiwc::telemetry
{

HostTelemetry
CpuSampler::sampleJob(const HostProfile &host, const JobProfile *gpu,
                      Seconds duration) const
{
    AIWC_CHECK(duration > 0.0, "host telemetry needs a positive run");
    AIWC_CHECK(host.cpu_slots > 0, "job holds no CPU slots");

    Rng rng(host.seed != 0 ? host.seed : 0xc0ffee11u);
    HostTelemetry out;

    // Phase structure: CPU-only jobs are continuously busy; GPU jobs
    // inherit the GPU's active/idle alternation (the host follows the
    // training loop).
    std::vector<Phase> phases;
    if (gpu) {
        phases = PhaseModel(*gpu).generate(duration, rng);
    } else {
        phases.push_back(Phase{true, duration});
    }

    const auto slots = static_cast<double>(host.cpu_slots);
    for (const auto &phase : phases) {
        const double busy_mean =
            phase.active ? host.busy_slots_mean
                         : host.idle_busy_slots_mean;
        const auto samples = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(phase.length / interval_));
        for (std::int64_t i = 0; i < samples; ++i) {
            const double busy = std::clamp(
                busy_mean * (1.0 + host.noise_rel * rng.gaussian()),
                0.0, slots);
            out.cpu_util.add(busy / slots);
            const double rss = std::clamp(
                host.rss_fraction *
                    (1.0 + 0.3 * host.noise_rel * rng.gaussian()),
                0.0, 1.0);
            out.rss_util.add(rss);
            ++out.samples;
        }
    }
    return out;
}

} // namespace aiwc::telemetry
