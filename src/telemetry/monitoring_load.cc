#include "aiwc/telemetry/monitoring_load.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace aiwc::telemetry
{

double
MonitoringLoadModel::rowsPerSecond(const core::JobRecord &job) const
{
    const double gpu_rows =
        job.isGpuJob()
            ? static_cast<double>(job.gpus) / params_.gpu_interval
            : 0.0;
    // CPU rows come from every node the job touches; approximate node
    // count from the slot footprint (80 slots per node).
    const double nodes = std::max(
        1.0, std::ceil(static_cast<double>(job.cpu_slots) / 80.0));
    return gpu_rows + nodes / params_.cpu_interval;
}

MonitoringComparison
MonitoringLoadModel::analyze(const core::Dataset &dataset) const
{
    MonitoringComparison out;

    struct Edge
    {
        Seconds t;
        double rate;   //!< rows/s delta
        int streams;   //!< open-stream delta
    };
    std::vector<Edge> edges;
    for (const auto &job : dataset.records()) {
        if (job.runTime() <= 0.0)
            continue;
        const double rate = rowsPerSecond(job);
        const double bytes =
            rate * job.runTime() * sizeof(Sample);
        edges.push_back({job.start_time, rate, 1});
        edges.push_back({job.end_time, -rate, -1});
        out.direct.total_bytes += bytes;
        out.spooled.total_bytes += bytes;  // same data, different path
        out.spooled.largest_burst_bytes =
            std::max(out.spooled.largest_burst_bytes, bytes);
    }

    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) {
                  if (a.t != b.t)
                      return a.t < b.t;
                  return a.rate < b.rate;  // releases first at ties
              });
    double rate = 0.0;
    int streams = 0;
    for (const auto &e : edges) {
        rate += e.rate;
        streams += e.streams;
        out.direct.peak_rows_per_second =
            std::max(out.direct.peak_rows_per_second, rate);
        out.direct.peak_streams =
            std::max(out.direct.peak_streams, streams);
    }
    out.direct.largest_burst_bytes = 0.0;  // steady drip, no bursts

    // Spooled: the shared FS sees one sequential copy per epilog; the
    // sustained row rate it absorbs is total volume over the study
    // span, and at most one stream per simultaneous epilog (bounded by
    // the ends-per-second distribution — approximate with ends within
    // one second windows).
    std::vector<double> ends;
    for (const auto &job : dataset.records())
        if (job.runTime() > 0.0)
            ends.push_back(job.end_time);
    std::sort(ends.begin(), ends.end());
    int peak_epilogs = 0;
    std::size_t lo = 0;
    for (std::size_t hi = 0; hi < ends.size(); ++hi) {
        while (ends[hi] - ends[lo] > 1.0)
            ++lo;
        peak_epilogs = std::max(
            peak_epilogs, static_cast<int>(hi - lo + 1));
    }
    out.spooled.peak_streams = peak_epilogs;
    if (!ends.empty() && ends.back() > 0.0) {
        out.spooled.peak_rows_per_second =
            out.spooled.total_bytes / sizeof(Sample) / ends.back();
    }

    if (out.spooled.peak_streams > 0) {
        out.metadata_relief_factor =
            static_cast<double>(out.direct.peak_streams) /
            static_cast<double>(out.spooled.peak_streams);
    }
    return out;
}

} // namespace aiwc::telemetry
