#include "aiwc/telemetry/sampler.hh"

#include <algorithm>
#include <cmath>

#include "aiwc/base/check.hh"
#include "aiwc/telemetry/phase_model.hh"
#include "aiwc/telemetry/utilization_model.hh"

namespace aiwc::telemetry
{

GpuSampler::GpuSampler(const PowerModel &power,
                       const MonitoringParams &params)
    : power_(power), params_(params)
{
}

JobTelemetry
GpuSampler::sampleJob(const JobProfile &profile, Seconds duration,
                      bool detailed, TimeSeries *series) const
{
    AIWC_CHECK(duration > 0.0, "telemetry needs a positive duration");
    AIWC_CHECK(profile.num_gpus >= 1, "telemetry needs at least one GPU");
    AIWC_CHECK(profile.idle_gpus >= 0 &&
                    profile.idle_gpus < profile.num_gpus,
                "at least one GPU must be active");

    Rng rng(profile.telemetry_seed != 0 ? profile.telemetry_seed
                                        : 0x51ed2701u);
    JobTelemetry out;
    out.detailed = detailed;
    out.per_gpu.resize(static_cast<std::size_t>(profile.num_gpus));

    // One shared phase sequence: the GPUs of a data-parallel job step
    // together (Sec. V: active GPUs behave uniformly).
    const PhaseModel model(profile);
    const auto phases = model.generate(duration, rng);
    const UtilizationModel levels(profile);

    const int budget = detailed ? params_.max_timeseries_samples
                                : params_.max_summary_samples;
    const Seconds stride = std::max(
        params_.gpu_interval, duration / static_cast<double>(budget));

    // Streaming CoV inputs for the detailed subset (GPU 0 only).
    stats::RunningSummary active_sm, active_membw, active_memsize;

    for (int g = 0; g < profile.num_gpus; ++g) {
        auto &summary = out.per_gpu[static_cast<std::size_t>(g)];
        const bool gpu_active = g < profile.activeGpus();
        // Small static imbalance between the active GPUs of a job.
        const double gpu_scale =
            gpu_active ? std::clamp(1.0 + 0.03 * rng.gaussian(), 0.8, 1.2)
                       : 0.0;

        for (const auto &phase : phases) {
            // Stochastic rounding keeps expected samples proportional
            // to phase length while bounding total volume.
            const double exact = phase.length / stride;
            auto n = static_cast<int>(exact);
            if (rng.chance(exact - n))
                ++n;
            if (detailed && n == 0)
                n = 1;  // the 100 ms mode never skips a phase

            const bool hot = phase.active && gpu_active;
            const PhaseLevels lv = hot ? levels.activeLevels(gpu_scale, rng)
                                       : levels.idleLevels();
            for (int i = 0; i < n; ++i) {
                Sample s;
                if (hot) {
                    s.sm = static_cast<float>(UtilizationModel::noisySample(
                        lv.sm, profile.sample_noise_rel, rng));
                    s.membw =
                        static_cast<float>(UtilizationModel::noisySample(
                            lv.membw, profile.sample_noise_rel, rng));
                    s.memsize =
                        static_cast<float>(UtilizationModel::noisySample(
                            lv.memsize, profile.memsize_noise_rel, rng));
                    s.pcie_tx =
                        static_cast<float>(UtilizationModel::noisySample(
                            lv.tx, 0.15, rng));
                    s.pcie_rx =
                        static_cast<float>(UtilizationModel::noisySample(
                            lv.rx, 0.15, rng));
                } else {
                    s.memsize = static_cast<float>(
                        gpu_active
                            ? UtilizationModel::noisySample(
                                  lv.memsize, profile.memsize_noise_rel,
                                  rng)
                            : 0.0);
                    s.pcie_tx = static_cast<float>(lv.tx);
                    s.pcie_rx = static_cast<float>(lv.rx);
                }
                s.power_watts = static_cast<float>(power_.sampleWatts(
                    s.sm, s.membw, profile.power_efficiency, rng));

                AIWC_DCHECK_GE(s.sm, 0.0f, "negative SM sample");
                AIWC_DCHECK_GE(s.membw, 0.0f, "negative membw sample");
                AIWC_DCHECK_GE(s.memsize, 0.0f, "negative memsize sample");
                AIWC_DCHECK_GE(s.power_watts, 0.0f, "negative power sample");
                summary.sm.add(s.sm);
                summary.membw.add(s.membw);
                summary.memsize.add(s.memsize);
                summary.pcie_tx.add(s.pcie_tx);
                summary.pcie_rx.add(s.pcie_rx);
                summary.power_watts.add(s.power_watts);
                ++out.samples_generated;

                if (g == 0 && hot) {
                    active_sm.add(s.sm);
                    active_membw.add(s.membw);
                    active_memsize.add(s.memsize);
                }
                if (g == 0 && series)
                    series->append(s);
            }
        }

        // Saturation bursts (Figs. 7b, 8): inject the single extreme
        // sample on the first (active) GPU. One sample among
        // thousands barely moves the mean but pins the max — exactly
        // the "max reaches the limit at some point" semantics.
        if (g == 0) {
            if (profile.sat_sm) {
                summary.sm.add(1.0);
                summary.power_watts.add(power_.sampleWatts(
                    1.0, profile.membw_mean, profile.power_efficiency,
                    rng));
            }
            if (profile.sat_membw)
                summary.membw.add(1.0);
            if (profile.sat_memsize)
                summary.memsize.add(1.0);
            if (profile.sat_tx)
                summary.pcie_tx.add(1.0);
            if (profile.sat_rx)
                summary.pcie_rx.add(1.0);
        }
    }

    if (detailed) {
        auto &ps = out.phases;
        ps.active_fraction = PhaseModel::activeFraction(phases);
        for (const auto &phase : phases) {
            auto &sink =
                phase.active ? ps.active_intervals : ps.idle_intervals;
            if (sink.size() < 20000)
                sink.push_back(phase.length);
        }
        ps.active_sm_cov = active_sm.covPercent();
        ps.active_membw_cov = active_membw.covPercent();
        ps.active_memsize_cov = active_memsize.covPercent();
    }
    return out;
}

} // namespace aiwc::telemetry
