#include "aiwc/telemetry/utilization_model.hh"

#include <algorithm>
#include <cmath>

namespace aiwc::telemetry
{

PhaseLevels
UtilizationModel::activeLevels(double gpu_scale, Rng &rng) const
{
    // Natural activity stays below natural_ceiling: sustained 100% is
    // not how real kernels behave, and keeping ordinary samples under
    // the bottleneck threshold lets the calibrated saturation flags —
    // not sampling noise — decide which jobs count as bottlenecked
    // (Figs. 7b/8).
    const JobProfile &p = profile_;
    const double j = p.phase_jitter_sigma;
    const double factor = std::exp(j * rng.gaussian() - 0.5 * j * j);
    PhaseLevels lv;
    lv.sm = std::clamp(p.sm_mean * gpu_scale * factor, 0.0,
                       natural_ceiling);
    const double bw_wobble =
        std::exp(0.5 * j * rng.gaussian() - 0.125 * j * j);
    lv.membw = std::clamp(p.membw_mean * gpu_scale * factor * bw_wobble,
                          0.0, natural_ceiling);
    lv.memsize = std::clamp(p.memsize_mean * (1.0 + 0.03 * rng.gaussian()),
                            0.0, natural_ceiling);
    lv.tx = std::clamp(
        p.pcie_tx_mean * std::exp(0.25 * rng.gaussian() - 0.03125), 0.0,
        natural_ceiling);
    lv.rx = std::clamp(
        p.pcie_rx_mean * std::exp(0.25 * rng.gaussian() - 0.03125), 0.0,
        natural_ceiling);
    return lv;
}

PhaseLevels
UtilizationModel::idleLevels() const
{
    PhaseLevels lv;
    lv.memsize = 0.85 * profile_.memsize_mean;
    lv.tx = 0.002;
    lv.rx = 0.002;
    return lv;
}

double
UtilizationModel::noisySample(double mean, double rel, Rng &rng)
{
    if (mean <= 0.0)
        return 0.0;
    return std::clamp(mean * (1.0 + rel * rng.gaussian()), 0.0,
                      natural_ceiling);
}

} // namespace aiwc::telemetry
