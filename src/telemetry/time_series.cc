#include "aiwc/telemetry/time_series.hh"

#include "aiwc/common/csv.hh"
#include "aiwc/common/table.hh"

namespace aiwc::telemetry
{

void
TimeSeries::writeCsv(std::ostream &os) const
{
    CsvWriter csv(os, {"time_s", "sm", "membw", "memsize", "pcie_tx",
                       "pcie_rx", "power_w"});
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const Sample &s = samples_[i];
        csv.writeRow({
            formatNumber(timeOf(i), 3),
            formatNumber(s.sm, 4),
            formatNumber(s.membw, 4),
            formatNumber(s.memsize, 4),
            formatNumber(s.pcie_tx, 4),
            formatNumber(s.pcie_rx, 4),
            formatNumber(s.power_watts, 1),
        });
    }
}

} // namespace aiwc::telemetry
