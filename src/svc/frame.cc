#include "aiwc/svc/frame.hh"

#include <cmath>

#include "aiwc/base/check.hh"
#include "aiwc/common/binary.hh"
#include "aiwc/obs/metrics.hh"

namespace aiwc::svc
{

namespace
{

obs::Counter &
framesEncodedCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.svc.frames_encoded");
    return c;
}

obs::Counter &
framesDecodedCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.svc.frames_decoded");
    return c;
}

obs::Counter &
decodeRejectsCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.svc.decode_rejects");
    return c;
}

/** Fixed per-record bytes before any variable-length section. */
constexpr std::size_t min_record_bytes =
    4 + 4 + 4 * 1 + 4 * 8 + 4 + 4 + 8 + 2;

/** Per-GPU summaries are six metrics of five doubles-or-counts. */
constexpr std::size_t gpu_summary_bytes = 6 * (8 + 4 * 8);

/** Sanity ceiling on GPUs per job (the study tops out at 16). */
constexpr std::size_t max_gpus_per_record = 1024;

void
writeSummary(ByteWriter &w, const stats::RunningSummary &s)
{
    w.u64(s.count());
    w.f64(s.min());
    w.f64(s.mean());
    w.f64(s.max());
    w.f64(s.stddev());
}

/**
 * Read one RunningSummary worth of moments, validating everything
 * fromMoments AIWC_CHECKs — wire bytes must never reach a contract
 * abort. @return false on any violation.
 */
bool
readSummary(ByteReader &r, stats::RunningSummary &out)
{
    const std::uint64_t count = r.u64();
    const double min = r.f64();
    const double mean = r.f64();
    const double max = r.f64();
    const double stddev = r.f64();
    if (!r.ok())
        return false;
    if (!std::isfinite(min) || !std::isfinite(mean) ||
        !std::isfinite(max) || !std::isfinite(stddev))
        return false;
    if (!(min <= mean && mean <= max) || stddev < 0.0)
        return false;
    out = stats::RunningSummary::fromMoments(
        static_cast<std::size_t>(count), min, mean, max, stddev);
    return true;
}

void
writeRecord(ByteWriter &w, const core::JobRecord &rec)
{
    w.u32(rec.id);
    w.u32(rec.user);
    w.u8(static_cast<std::uint8_t>(rec.interface));
    w.u8(static_cast<std::uint8_t>(rec.terminal));
    w.u8(static_cast<std::uint8_t>(rec.true_class));
    w.u8(rec.has_timeseries ? 1 : 0);
    w.f64(rec.submit_time);
    w.f64(rec.start_time);
    w.f64(rec.end_time);
    w.f64(rec.walltime_limit);
    w.u32(static_cast<std::uint32_t>(rec.gpus));
    w.u32(static_cast<std::uint32_t>(rec.cpu_slots));
    w.f64(rec.ram_gb);
    w.u16(static_cast<std::uint16_t>(rec.per_gpu.size()));
    for (const core::GpuUsageSummary &gpu : rec.per_gpu) {
        writeSummary(w, gpu.sm);
        writeSummary(w, gpu.membw);
        writeSummary(w, gpu.memsize);
        writeSummary(w, gpu.pcie_tx);
        writeSummary(w, gpu.pcie_rx);
        writeSummary(w, gpu.power_watts);
    }
    if (rec.has_timeseries) {
        w.f64(rec.phases.active_fraction);
        w.f64(rec.phases.active_sm_cov);
        w.f64(rec.phases.active_membw_cov);
        w.f64(rec.phases.active_memsize_cov);
        w.u32(static_cast<std::uint32_t>(
            rec.phases.active_intervals.size()));
        for (double v : rec.phases.active_intervals)
            w.f64(v);
        w.u32(static_cast<std::uint32_t>(
            rec.phases.idle_intervals.size()));
        for (double v : rec.phases.idle_intervals)
            w.f64(v);
    }
}

bool
readIntervals(ByteReader &r, std::vector<double> &out)
{
    const std::uint32_t n = r.u32();
    if (!r.ok() || r.remaining() < static_cast<std::size_t>(n) * 8)
        return false;
    out.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        out[i] = r.f64();
        if (!std::isfinite(out[i]) || out[i] < 0.0)
            return false;
    }
    return r.ok();
}

bool
readRecord(ByteReader &r, core::JobRecord &rec)
{
    rec.id = r.u32();
    rec.user = r.u32();
    const std::uint8_t interface = r.u8();
    const std::uint8_t terminal = r.u8();
    const std::uint8_t true_class = r.u8();
    const std::uint8_t has_timeseries = r.u8();
    rec.submit_time = r.f64();
    rec.start_time = r.f64();
    rec.end_time = r.f64();
    rec.walltime_limit = r.f64();
    const std::uint32_t gpus = r.u32();
    const std::uint32_t cpu_slots = r.u32();
    rec.ram_gb = r.f64();
    const std::uint16_t gpu_count = r.u16();
    if (!r.ok())
        return false;
    // Enum-range and numeric sanity: every rejected condition here
    // would otherwise surface later as a contract abort or a poisoned
    // sketch (the KLL rejects NaN samples with a DCHECK).
    if (interface >= num_interfaces || terminal >= num_terminal_states ||
        true_class >= num_lifecycles || has_timeseries > 1)
        return false;
    if (!std::isfinite(rec.submit_time) ||
        !std::isfinite(rec.start_time) ||
        !std::isfinite(rec.end_time) ||
        !std::isfinite(rec.walltime_limit) || !std::isfinite(rec.ram_gb))
        return false;
    if (gpu_count > max_gpus_per_record || gpus > max_gpus_per_record)
        return false;
    if (r.remaining() < gpu_count * gpu_summary_bytes)
        return false;
    rec.interface = static_cast<Interface>(interface);
    rec.terminal = static_cast<TerminalState>(terminal);
    rec.true_class = static_cast<Lifecycle>(true_class);
    rec.has_timeseries = has_timeseries == 1;
    rec.gpus = static_cast<int>(gpus);
    rec.cpu_slots = static_cast<int>(cpu_slots);
    rec.per_gpu.resize(gpu_count);
    for (core::GpuUsageSummary &gpu : rec.per_gpu) {
        if (!readSummary(r, gpu.sm) || !readSummary(r, gpu.membw) ||
            !readSummary(r, gpu.memsize) ||
            !readSummary(r, gpu.pcie_tx) ||
            !readSummary(r, gpu.pcie_rx) ||
            !readSummary(r, gpu.power_watts))
            return false;
    }
    if (rec.has_timeseries) {
        rec.phases.active_fraction = r.f64();
        // The CoV fields may legitimately be NaN (the covPercent
        // zero-mean convention), so only the fraction is range-checked.
        rec.phases.active_sm_cov = r.f64();
        rec.phases.active_membw_cov = r.f64();
        rec.phases.active_memsize_cov = r.f64();
        if (!r.ok() || !std::isfinite(rec.phases.active_fraction) ||
            rec.phases.active_fraction < 0.0 ||
            rec.phases.active_fraction > 1.0)
            return false;
        if (!readIntervals(r, rec.phases.active_intervals) ||
            !readIntervals(r, rec.phases.idle_intervals))
            return false;
    }
    return r.ok();
}

void
writeHeader(ByteWriter &w, FrameType type, std::uint64_t tenant,
            std::uint32_t payload_len, std::uint32_t payload_crc)
{
    w.u32(frame_magic);
    w.u16(frame_version);
    w.u16(static_cast<std::uint16_t>(type));
    w.u64(tenant);
    w.u32(payload_len);
    w.u32(payload_crc);
}

DecodedFrame
reject(DecodeStatus status, std::size_t consumed)
{
    decodeRejectsCounter().add(1);
    DecodedFrame frame;
    frame.status = status;
    frame.consumed = consumed;
    return frame;
}

} // namespace

const char *
toString(DecodeStatus status)
{
    switch (status) {
      case DecodeStatus::Ok: return "ok";
      case DecodeStatus::NeedMoreData: return "need-more-data";
      case DecodeStatus::BadMagic: return "bad-magic";
      case DecodeStatus::VersionSkew: return "version-skew";
      case DecodeStatus::BadType: return "bad-type";
      case DecodeStatus::Oversized: return "oversized";
      case DecodeStatus::BadCrc: return "bad-crc";
      case DecodeStatus::Malformed: return "malformed";
    }
    return "unknown";
}

std::uint32_t
crc32(std::span<const std::uint8_t> bytes)
{
    // The wire format's checksum is the shared CRC-32 implementation;
    // this alias keeps the svc public API stable.
    return aiwc::crc32(bytes);
}

std::vector<std::uint8_t>
encodeJobBatch(std::uint64_t tenant,
               std::span<const core::JobRecord> records)
{
    AIWC_CHECK(records.size() <= 0xffffffffull,
               "job batch record count exceeds the u32 wire field");
    std::vector<std::uint8_t> payload;
    payload.reserve(records.size() * min_record_bytes + 4);
    {
        ByteWriter w(payload);
        w.u32(static_cast<std::uint32_t>(records.size()));
        for (const core::JobRecord &rec : records)
            writeRecord(w, rec);
    }
    AIWC_CHECK(payload.size() <= max_frame_payload,
               "encoded job batch exceeds max_frame_payload; ",
               "split the batch");

    std::vector<std::uint8_t> frame;
    frame.reserve(frame_header_bytes + payload.size());
    ByteWriter w(frame);
    writeHeader(w, FrameType::JobBatch, tenant,
                static_cast<std::uint32_t>(payload.size()),
                crc32(payload));
    frame.insert(frame.end(), payload.begin(), payload.end());
    framesEncodedCounter().add(1);
    return frame;
}

DecodedFrame
decodeFrame(std::span<const std::uint8_t> buffer)
{
    if (buffer.size() < frame_header_bytes) {
        DecodedFrame frame;  // not a reject: just an incomplete read
        return frame;
    }
    ByteReader header(buffer.first(frame_header_bytes));
    const std::uint32_t magic = header.u32();
    const std::uint16_t version = header.u16();
    const std::uint16_t type = header.u16();
    const std::uint64_t tenant = header.u64();
    const std::uint32_t payload_len = header.u32();
    const std::uint32_t payload_crc = header.u32();

    if (magic != frame_magic)
        return reject(DecodeStatus::BadMagic, 0);
    if (payload_len > max_frame_payload) {
        // The length prefix itself is untrustworthy: skipping by it
        // could jump anywhere. Connection-fatal, consumed 0.
        return reject(DecodeStatus::Oversized, 0);
    }
    const std::size_t total = frame_header_bytes + payload_len;
    if (buffer.size() < total) {
        DecodedFrame frame;
        return frame;
    }
    if (version != frame_version)
        return reject(DecodeStatus::VersionSkew, total);
    if (type != static_cast<std::uint16_t>(FrameType::JobBatch))
        return reject(DecodeStatus::BadType, total);

    const auto payload = buffer.subspan(frame_header_bytes, payload_len);
    if (crc32(payload) != payload_crc)
        return reject(DecodeStatus::BadCrc, total);

    ByteReader r(payload);
    const std::uint32_t count = r.u32();
    if (!r.ok() ||
        count > payload.size() / (min_record_bytes > 0
                                      ? min_record_bytes
                                      : 1) + 1)
        return reject(DecodeStatus::Malformed, total);

    DecodedFrame frame;
    frame.records.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        core::JobRecord rec;
        if (!readRecord(r, rec))
            return reject(DecodeStatus::Malformed, total);
        frame.records.push_back(std::move(rec));
    }
    if (!r.atEnd())  // trailing junk inside a CRC-valid payload
        return reject(DecodeStatus::Malformed, total);

    frame.status = DecodeStatus::Ok;
    frame.consumed = total;
    frame.tenant = tenant;
    framesDecodedCounter().add(1);
    return frame;
}

} // namespace aiwc::svc
