#include "aiwc/svc/service.hh"

#include <atomic>
#include <utility>

#include "aiwc/base/check.hh"
#include "aiwc/common/parallel.hh"
#include "aiwc/obs/metrics.hh"
#include "aiwc/obs/trace.hh"

namespace aiwc::svc
{

namespace
{

obs::Counter &
batchesAdmittedCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.svc.batches_admitted");
    return c;
}

obs::Counter &
batchesRejectedCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.svc.batches_rejected");
    return c;
}

obs::Counter &
recordsIngestedCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.svc.records_ingested");
    return c;
}

obs::Counter &
snapshotsCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.svc.snapshots");
    return c;
}

obs::Gauge &
tenantsGauge()
{
    static obs::Gauge &g =
        obs::MetricsRegistry::global().gauge("aiwc.svc.tenants");
    return g;
}

obs::Gauge &
queuedRecordsGauge()
{
    static obs::Gauge &g =
        obs::MetricsRegistry::global().gauge("aiwc.svc.queued_records");
    return g;
}

obs::Histogram &
drainNsHistogram()
{
    static obs::Histogram &h =
        obs::MetricsRegistry::global().histogram("aiwc.svc.drain_ns");
    return h;
}

} // namespace

const char *
toString(Admission a)
{
    switch (a) {
      case Admission::Accepted: return "accepted";
      case Admission::Backpressure: return "backpressure";
    }
    return "unknown";
}

Service::Tenant::Tenant(const ServiceOptions &options)
{
    shards.reserve(options.shards_per_tenant);
    for (std::size_t i = 0; i < options.shards_per_tenant; ++i)
        shards.emplace_back(options.stream);
}

Service::Service(ServiceOptions options) : options_(std::move(options))
{
    AIWC_CHECK(options_.shards_per_tenant >= 1,
               "service needs at least one shard per tenant");
    AIWC_CHECK(options_.queue_budget_records >= 1,
               "queue budget must admit at least one record");
}

OfferResult
Service::offerFrame(std::span<const std::uint8_t> buffer)
{
    DecodedFrame frame = decodeFrame(buffer);
    OfferResult result;
    result.decode = frame.status;
    result.consumed = frame.consumed;
    result.tenant = frame.tenant;
    if (!frame.ok())
        return result;
    const std::size_t records = frame.records.size();
    result.admission =
        enqueueBatch(frame.tenant, std::move(frame.records));
    if (result.admission == Admission::Accepted)
        result.records = records;
    return result;
}

Admission
Service::enqueueBatch(std::uint64_t tenant_id,
                      std::vector<core::JobRecord> &&batch)
{
    Tenant &tenant = tenantFor(tenant_id);
    MutexLock lock(tenant.mutex);
    // An empty queue always admits: a batch larger than the whole
    // budget must still be able to make progress eventually.
    if (tenant.queued_records > 0 &&
        tenant.queued_records + batch.size() >
            options_.queue_budget_records) {
        batchesRejectedCounter().add(1);
        return Admission::Backpressure;
    }
    tenant.queued_records += batch.size();
    queuedRecordsGauge().add(static_cast<std::int64_t>(batch.size()));
    tenant.queue.push_back(std::move(batch));
    batchesAdmittedCounter().add(1);
    return Admission::Accepted;
}

std::size_t
Service::drain()
{
    obs::ScopedTimer timer(drainNsHistogram(), "svc.drain");
    // Snapshot the tenant pointer set in ascending-id order; the map
    // values are stable unique_ptrs, so the registry lock can drop
    // before the fan-out (lock order: registry before tenant).
    std::vector<Tenant *> tenants;
    {
        MutexLock lock(registry_mutex_);
        tenants.reserve(tenants_.size());
        for (const auto &[id, tenant] : tenants_)
            tenants.push_back(tenant.get());
    }
    std::atomic<std::size_t> total{0};
    parallelFor(globalPool(), tenants.size(), [&](std::size_t i) {
        Tenant &tenant = *tenants[i];
        for (;;) {
            // One batch per lock hold: snapshots interleave at batch
            // boundaries instead of waiting out the whole backlog.
            MutexLock lock(tenant.mutex);
            if (tenant.queue.empty())
                break;
            const std::size_t shard_count = tenant.shards.size();
            std::vector<core::JobRecord> batch =
                std::move(tenant.queue.front());
            tenant.queue.pop_front();
            tenant.queued_records -= batch.size();
            queuedRecordsGauge().add(
                -static_cast<std::int64_t>(batch.size()));
            // user-keyed routing: deterministic under any drain
            // interleaving, and each user's table entry lives in
            // exactly one shard (see the service.hh threading note).
            for (const core::JobRecord &rec : batch)
                tenant.shards[rec.user % shard_count].ingest(rec);
            tenant.ingested += batch.size();
            total.fetch_add(batch.size(), std::memory_order_relaxed);
        }
    });
    const std::size_t drained = total.load(std::memory_order_relaxed);
    recordsIngestedCounter().add(drained);
    return drained;
}

stream::SnapshotReport
Service::snapshot(std::uint64_t tenant_id) const
{
    obs::TraceSpan span("svc.snapshot");
    const Tenant *tenant = findTenant(tenant_id);
    AIWC_CHECK(tenant != nullptr, "snapshot of unknown tenant ",
               tenant_id, "; probe with hasTenant() first");
    MutexLock lock(tenant->mutex);
    snapshotsCounter().add(1);
    return stream::snapshotShards(tenant->shards);
}

bool
Service::hasTenant(std::uint64_t tenant_id) const
{
    return findTenant(tenant_id) != nullptr;
}

std::vector<std::uint64_t>
Service::tenantIds() const
{
    MutexLock lock(registry_mutex_);
    std::vector<std::uint64_t> ids;
    ids.reserve(tenants_.size());
    for (const auto &[id, tenant] : tenants_)
        ids.push_back(id);
    return ids;
}

std::size_t
Service::queuedRecords(std::uint64_t tenant_id) const
{
    const Tenant *tenant = findTenant(tenant_id);
    if (tenant == nullptr)
        return 0;
    MutexLock lock(tenant->mutex);
    return tenant->queued_records;
}

std::uint64_t
Service::ingestedRecords(std::uint64_t tenant_id) const
{
    const Tenant *tenant = findTenant(tenant_id);
    if (tenant == nullptr)
        return 0;
    MutexLock lock(tenant->mutex);
    return tenant->ingested;
}

std::size_t
Service::sketchBytes() const
{
    std::vector<const Tenant *> tenants;
    {
        MutexLock lock(registry_mutex_);
        tenants.reserve(tenants_.size());
        for (const auto &[id, tenant] : tenants_)
            tenants.push_back(tenant.get());
    }
    std::size_t bytes = 0;
    for (const Tenant *tenant : tenants) {
        MutexLock lock(tenant->mutex);
        for (const stream::StreamPipeline &shard : tenant->shards)
            bytes += shard.sketchBytes();
    }
    return bytes;
}

Service::Tenant &
Service::tenantFor(std::uint64_t id)
{
    MutexLock lock(registry_mutex_);
    auto it = tenants_.find(id);
    if (it == tenants_.end()) {
        it = tenants_
                 .emplace(id, std::make_unique<Tenant>(options_))
                 .first;
        tenantsGauge().set(static_cast<std::int64_t>(tenants_.size()));
    }
    return *it->second;
}

const Service::Tenant *
Service::findTenant(std::uint64_t id) const
{
    MutexLock lock(registry_mutex_);
    const auto it = tenants_.find(id);
    return it == tenants_.end() ? nullptr : it->second.get();
}

} // namespace aiwc::svc
