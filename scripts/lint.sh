#!/usr/bin/env bash
# Lint gate: aiwc-lint (the self-hosted project-law pass), clang-format
# (style), and clang-tidy (generic static analysis) over the whole
# tree. Used locally and as the CI lint jobs.
#
# Usage:
#   scripts/lint.sh [--require] [--aiwc-only] [--build-dir DIR]
#
#   --require    fail (exit 2) when clang-format/clang-tidy are not
#                installed instead of skipping them. CI passes this;
#                locally, missing tools are reported and skipped so the
#                gate stays usable in minimal containers.
#   --aiwc-only  run only the self-hosted aiwc-lint pass. It needs
#                nothing but the repo's own toolchain, so this works in
#                containers without clang-format/clang-tidy.
#   --build-dir  build directory for the aiwc-lint binary and the
#                clang-tidy compile-command database (default: build;
#                configured with CMAKE_EXPORT_COMPILE_COMMANDS if
#                absent — the presets all export it, see
#                CMakePresets.json).
set -u

cd "$(dirname "$0")/.."

require_tools=0
aiwc_only=0
build_dir=build
while [ $# -gt 0 ]; do
    case "$1" in
        --require) require_tools=1 ;;
        --aiwc-only) aiwc_only=1 ;;
        --build-dir) shift; build_dir=$1 ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

# Pick the newest available versioned or unversioned tool name.
find_tool() {
    local base=$1
    local candidate
    for candidate in "$base" "$base-19" "$base-18" "$base-17" "$base-16" \
                     "$base-15" "$base-14"; do
        if command -v "$candidate" >/dev/null 2>&1; then
            echo "$candidate"
            return 0
        fi
    done
    return 1
}

sources=$(find src tests bench examples \
              \( -name '*.cc' -o -name '*.cpp' -o -name '*.hh' \) | sort)
[ -n "$sources" ] || { echo "lint: no sources found" >&2; exit 2; }

status=0
skipped=0

# --- aiwc-lint: the self-hosted project-law pass --------------------------
# Always required: it is built from this repo, so "not installed" is
# never a valid excuse. Configures the build dir on first use.
if [ ! -f "$build_dir/CMakeCache.txt" ]; then
    echo "lint: configuring $build_dir for aiwc-lint"
    cmake -B "$build_dir" -S . \
          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 2
fi
echo "lint: building aiwc-lint"
cmake --build "$build_dir" --target aiwc-lint >/dev/null || exit 2
echo "lint: running aiwc-lint"
if ! "$build_dir/tools/aiwc-lint/aiwc-lint"; then
    echo "lint: aiwc-lint reported findings" >&2
    status=1
fi

if [ "$aiwc_only" -eq 1 ]; then
    if [ "$status" -eq 0 ]; then
        echo "lint: OK (aiwc-lint only)"
    fi
    exit "$status"
fi

# --- clang-format: style must match .clang-format exactly -----------------
if fmt=$(find_tool clang-format); then
    echo "lint: checking formatting with $fmt"
    # shellcheck disable=SC2086
    if ! "$fmt" --dry-run -Werror $sources; then
        echo "lint: formatting violations found (run $fmt -i <file>)" >&2
        status=1
    fi
else
    echo "lint: clang-format not found; skipping the format check" >&2
    skipped=1
fi

# --- clang-tidy: the static-analysis pass over the library ----------------
if tidy=$(find_tool clang-tidy); then
    if [ ! -f "$build_dir/compile_commands.json" ]; then
        echo "lint: generating compile commands in $build_dir"
        cmake -B "$build_dir" -S . \
              -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 2
    fi
    echo "lint: running $tidy"
    tidy_sources=$(find src -name '*.cc' | sort)
    # shellcheck disable=SC2086
    if ! "$tidy" -p "$build_dir" --quiet $tidy_sources; then
        echo "lint: clang-tidy reported findings" >&2
        status=1
    fi
else
    echo "lint: clang-tidy not found; skipping static analysis" >&2
    skipped=1
fi

if [ "$skipped" -eq 1 ] && [ "$require_tools" -eq 1 ]; then
    echo "lint: required tools missing (--require)" >&2
    exit 2
fi

if [ "$status" -eq 0 ]; then
    echo "lint: OK"
fi
exit "$status"
