#!/usr/bin/env bash
# Lint gate: aiwc-lint (the self-hosted project-law pass), clang-format
# (style), and clang-tidy (generic static analysis) over the whole
# tree. Used locally and as the CI lint jobs.
#
# Usage:
#   scripts/lint.sh [--require] [--aiwc-only] [--changed] [--sarif FILE]
#                   [--build-dir DIR]
#
#   --require    fail (exit 2) when clang-format/clang-tidy are not
#                installed instead of skipping them. CI passes this;
#                locally, missing tools are reported and skipped so the
#                gate stays usable in minimal containers.
#   --aiwc-only  run only the self-hosted aiwc-lint pass. It needs
#                nothing but the repo's own toolchain, so this works in
#                containers without clang-format/clang-tidy.
#   --changed    restrict aiwc-lint reporting to files changed relative
#                to the merge base with origin's default branch (plus
#                uncommitted/untracked files) and their reverse
#                include-closure. The whole tree is still analyzed —
#                cross-file rules need the full graph — so this is a
#                reporting scope, not a soundness tradeoff.
#   --sarif FILE write aiwc-lint's SARIF 2.1.0 report to FILE (CI
#                uploads it to GitHub code scanning).
#   --build-dir  build directory for the aiwc-lint binary and the
#                clang-tidy compile-command database (default: build;
#                configured with CMAKE_EXPORT_COMPILE_COMMANDS if
#                absent — the presets all export it, see
#                CMakePresets.json).
#
# Exit codes mirror aiwc-lint's: 0 clean, 1 findings, 2 internal error
# (could not build, could not run, bad layers spec) — CI treats 1 as
# "fix your change" and 2 as "fix the gate".
set -u

cd "$(dirname "$0")/.."

require_tools=0
aiwc_only=0
changed_only=0
sarif_file=
build_dir=build
while [ $# -gt 0 ]; do
    case "$1" in
        --require) require_tools=1 ;;
        --aiwc-only) aiwc_only=1 ;;
        --changed) changed_only=1 ;;
        --sarif) shift; sarif_file=$1 ;;
        --build-dir) shift; build_dir=$1 ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

# Pick the newest available versioned or unversioned tool name.
find_tool() {
    local base=$1
    local candidate
    for candidate in "$base" "$base-19" "$base-18" "$base-17" "$base-16" \
                     "$base-15" "$base-14"; do
        if command -v "$candidate" >/dev/null 2>&1; then
            echo "$candidate"
            return 0
        fi
    done
    return 1
}

sources=$(find src tests bench examples \
              \( -name '*.cc' -o -name '*.cpp' -o -name '*.hh' \) | sort)
[ -n "$sources" ] || { echo "lint: no sources found" >&2; exit 2; }

status=0
skipped=0

# --- aiwc-lint: the self-hosted project-law pass --------------------------
# Always required: it is built from this repo, so "not installed" is
# never a valid excuse. Configures the build dir on first use.
if [ ! -f "$build_dir/CMakeCache.txt" ]; then
    echo "lint: configuring $build_dir for aiwc-lint"
    cmake -B "$build_dir" -S . \
          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 2
fi
echo "lint: building aiwc-lint"
cmake --build "$build_dir" --target aiwc-lint >/dev/null || exit 2

# Assemble the aiwc-lint invocation: the incremental cache lives next
# to the binary it must match, SARIF goes wherever CI asked, and
# --changed narrows reporting to the git-diff set plus its reverse
# include-closure (the tool computes the closure).
aiwc_args=(--cache "$build_dir/aiwc-lint.cache")
[ -n "$sarif_file" ] && aiwc_args+=(--sarif "$sarif_file")
if [ "$changed_only" -eq 1 ]; then
    base=$(git merge-base HEAD origin/HEAD 2>/dev/null ||
           git merge-base HEAD origin/main 2>/dev/null || true)
    changed_files=$( { [ -n "$base" ] && git diff --name-only "$base";
                       git diff --name-only HEAD;
                       git ls-files --others --exclude-standard; } |
                     sort -u)
    if [ -z "$changed_files" ]; then
        # A non-existent sentinel keeps the scope non-empty (and thus
        # active) with an empty closure: analyze all, report nothing.
        echo "lint: --changed found no changed files; nothing to report"
        aiwc_args+=(--changed __no_changed_files__)
    fi
    while IFS= read -r f; do
        [ -n "$f" ] && aiwc_args+=(--changed "$f")
    done <<< "$changed_files"
fi

echo "lint: running aiwc-lint"
"$build_dir/tools/aiwc-lint/aiwc-lint" "${aiwc_args[@]}"
aiwc_rc=$?
if [ "$aiwc_rc" -eq 2 ]; then
    # Internal error (bad layers spec, unreadable file): NOT a finding.
    # Propagate distinctly so CI shows "gate broken", not "code dirty".
    echo "lint: aiwc-lint internal error (exit 2)" >&2
    exit 2
elif [ "$aiwc_rc" -ne 0 ]; then
    echo "lint: aiwc-lint reported findings" >&2
    status=1
fi

if [ "$aiwc_only" -eq 1 ]; then
    if [ "$status" -eq 0 ]; then
        echo "lint: OK (aiwc-lint only)"
    fi
    exit "$status"
fi

# --- clang-format: style must match .clang-format exactly -----------------
if fmt=$(find_tool clang-format); then
    echo "lint: checking formatting with $fmt"
    # shellcheck disable=SC2086
    if ! "$fmt" --dry-run -Werror $sources; then
        echo "lint: formatting violations found (run $fmt -i <file>)" >&2
        status=1
    fi
else
    echo "lint: clang-format not found; skipping the format check" >&2
    skipped=1
fi

# --- clang-tidy: the static-analysis pass over the library ----------------
if tidy=$(find_tool clang-tidy); then
    if [ ! -f "$build_dir/compile_commands.json" ]; then
        echo "lint: generating compile commands in $build_dir"
        cmake -B "$build_dir" -S . \
              -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 2
    fi
    echo "lint: running $tidy"
    tidy_sources=$(find src -name '*.cc' | sort)
    # shellcheck disable=SC2086
    if ! "$tidy" -p "$build_dir" --quiet $tidy_sources; then
        echo "lint: clang-tidy reported findings" >&2
        status=1
    fi
else
    echo "lint: clang-tidy not found; skipping static analysis" >&2
    skipped=1
fi

if [ "$skipped" -eq 1 ] && [ "$require_tools" -eq 1 ]; then
    echo "lint: required tools missing (--require)" >&2
    exit 2
fi

if [ "$status" -eq 0 ]; then
    echo "lint: OK"
fi
exit "$status"
