#!/usr/bin/env python3
"""Diff two aiwc BENCH_report.json files and flag perf regressions.

Usage:
    scripts/bench_compare.py [options] BASELINE CANDIDATE

Any bench binary writes a report with `--json[=path]` (see bench/
bench_common.hh); CI's perf-smoke job compares the fresh report against
the checked-in bench/baseline.json.

Comparison rules:
  * Wall times are compared per entry name. An entry regresses when
    candidate/baseline exceeds --threshold (default 1.5, i.e. 50%
    slower) AND at least one side is --min-ms or more (default 5 ms) —
    entries that are tiny on both sides are too noisy to gate on, but
    a tiny entry blowing up past the floor still counts.
  * An entry present only in the candidate is a NEW verdict: listed in
    the table, never gated (even under --strict), so a PR that adds a
    bench does not have to record its baseline in the same change. An
    entry present only in the baseline is a STALE verdict: the baseline
    still gates on a bench the candidate no longer runs, so the gate is
    partly fiction. STALE is warn-only by default (a bench removal can
    soft-land) but exits 2 under --strict — CI must not let a dropped
    bench keep its frozen baseline entry forever.
  * Deterministic work counters from the metrics snapshot (names ending
    in `.rows`, plus sim.events_fired / workload.jobs_generated) must
    match exactly when both reports used the same scale+seed: a
    mismatch means the tree now does *different work*, which a timing
    threshold would hide. Counter drift is reported as a warning.
  * Reports from different configurations (scale/seed) are not
    comparable; the script says so and exits 0.
  * A missing baseline file is reported as a distinct MISSING-BASELINE
    warning (it is *not* a passing comparison — nothing was compared).
    By default that exits 0 so a freshly added bench can soft-launch
    before its baseline is recorded; under --strict it exits 2 so CI
    can refuse to silently skip the gate forever.

Exit status: 1 when any wall-time regression was found and --warn-only
was not given; 2 when --strict was given and either the baseline file
is missing or a STALE entry was found; 0 otherwise.
"""

import argparse
import json
import os
import sys

# Metrics-snapshot counters that are a pure function of (scale, seed):
# exact-match material, unlike anything timing- or thread-derived.
DETERMINISTIC_COUNTER_SUFFIXES = (".rows", ".runs")
DETERMINISTIC_COUNTERS = {
    "aiwc.sim.events_fired",
    "aiwc.workload.jobs_generated",
    "aiwc.workload.synthesis_runs",
    "aiwc.sched.jobs_started",
    "aiwc.sched.jobs_finished",
    "aiwc.sched.backfill_hits",
    # Streaming pipeline: ingest volume, shard merges, and sketch
    # compactions are pure functions of (scale, seed) — the shard
    # geometry is fixed by the record count, not the thread count, and
    # bench_stream_ingest pins its timing iteration counts.
    "aiwc.stream.rows_ingested",
    "aiwc.stream.merges",
    "aiwc.stream.snapshots",
    "aiwc.sketch.compactions",
    # Binary trace format: encode/decode/reject totals are exact-match
    # material for any fixed input set (the round-trip CI job runs a
    # fixed synth seed through the converter).
    "aiwc.fmt.traces_encoded",
    "aiwc.fmt.traces_decoded",
    "aiwc.fmt.decode_rejects",
    # Scenario sweeps: cell count and every per-cell tally are a pure
    # function of (spec, scale, seed) — the engine is serial per cell
    # and the runner's parallelism only reorders disjoint writes.
    "aiwc.scenario.cells",
    "aiwc.scenario.tasks",
    "aiwc.scenario.migrations",
    "aiwc.scenario.wakes",
    "aiwc.scenario.sla_violations",
    "aiwc.scenario.sweeps",
    "aiwc.scenario.scn_parses",
    "aiwc.scenario.scn_diagnostics",
}

SCHEMA = "aiwc-bench-report-v1"


def load_report(path):
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"bench_compare: cannot read {path}: {exc}")
    if report.get("schema") != SCHEMA:
        sys.exit(
            f"bench_compare: {path} is not a {SCHEMA} report "
            f"(schema={report.get('schema')!r})"
        )
    return report


def is_deterministic_counter(name):
    return name in DETERMINISTIC_COUNTERS or name.endswith(
        DETERMINISTIC_COUNTER_SUFFIXES
    )


def compare_counters(base, cand):
    """Yield (name, base_value, cand_value) for drifted counters."""
    base_counters = base.get("metrics", {}).get("counters", {})
    cand_counters = cand.get("metrics", {}).get("counters", {})
    for name in sorted(set(base_counters) & set(cand_counters)):
        if not is_deterministic_counter(name):
            continue
        if base_counters[name] != cand_counters[name]:
            yield name, base_counters[name], cand_counters[name]


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline", help="baseline BENCH_report.json")
    parser.add_argument("candidate", help="candidate BENCH_report.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="regression ratio: candidate/baseline above this fails "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--min-ms",
        type=float,
        default=5.0,
        help="ignore entries below this wall time on both sides "
        "(default %(default)s ms; they are noise)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (CI soft-launch)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 on a missing baseline file or a STALE entry "
        "instead of warning (a skipped or partly-fictional comparison "
        "must not look like a pass)",
    )
    args = parser.parse_args()
    if args.threshold <= 1.0:
        parser.error("--threshold must be > 1.0")

    if not os.path.exists(args.baseline):
        # Distinct from both a pass and an unreadable report: nothing
        # was compared at all. Record a baseline by copying a trusted
        # candidate report into place.
        print(
            f"MISSING-BASELINE: {args.baseline} does not exist; "
            "no comparison was performed"
        )
        print(
            "record one with: cp <trusted BENCH_report.json> "
            f"{args.baseline}"
        )
        if args.strict:
            return 2
        return 0

    base = load_report(args.baseline)
    cand = load_report(args.candidate)

    print(
        f"baseline:  {args.baseline} "
        f"(git {base.get('git_sha', '?')}, scale {base.get('scale')}, "
        f"seed {base.get('seed')})"
    )
    print(
        f"candidate: {args.candidate} "
        f"(git {cand.get('git_sha', '?')}, scale {cand.get('scale')}, "
        f"seed {cand.get('seed')})"
    )

    for key in ("bench", "scale", "seed"):
        if base.get(key) != cand.get(key):
            print(
                f"reports are not comparable: {key} differs "
                f"({base.get(key)!r} vs {cand.get(key)!r}); nothing to do"
            )
            return 0

    base_entries = {e["name"]: e for e in base.get("entries", [])}
    cand_entries = {e["name"]: e for e in cand.get("entries", [])}

    regressions, improvements, new_entries, stale_entries, warnings = (
        [],
        [],
        [],
        [],
        [],
    )
    all_names = sorted(set(base_entries) | set(cand_entries))
    width = max((len(n) for n in all_names), default=10)
    print(f"\n{'entry':<{width}}  {'base ms':>10}  {'cand ms':>10}  ratio")
    for name in all_names:
        if name not in cand_entries:
            # STALE: the baseline timed it but the candidate did not. A
            # silently dropped bench would freeze its baseline entry
            # forever, so this warns by default and gates under
            # --strict; prune the entry from the baseline to clear it.
            b = base_entries[name]["wall_ms"]
            print(f"{name:<{width}}  {b:>10.2f}  {'-':>10}      -  STALE")
            stale_entries.append(name)
            warnings.append(
                f"entry '{name}' is STALE: present only in the "
                "baseline; the candidate no longer runs it"
            )
            continue
        if name not in base_entries:
            # NEW: the candidate timed it but the baseline predates it.
            # Distinct verdict from MISSING-BASELINE, and never a gate
            # (even under --strict): a PR that adds a bench must not be
            # forced to record its own baseline in the same change. The
            # next baseline refresh picks the entry up.
            c = cand_entries[name]["wall_ms"]
            print(f"{name:<{width}}  {'-':>10}  {c:>10.2f}      -  NEW")
            new_entries.append(name)
            continue
        b = base_entries[name]["wall_ms"]
        c = cand_entries[name]["wall_ms"]
        ratio = c / b if b > 0 else float("inf")
        significant = max(b, c) >= args.min_ms
        verdict = ""
        if significant and ratio > args.threshold:
            verdict = "  REGRESSION"
            regressions.append(name)
        elif significant and ratio < 1.0 / args.threshold:
            verdict = "  improved"
            improvements.append(name)
        print(f"{name:<{width}}  {b:>10.2f}  {c:>10.2f}  {ratio:>5.2f}{verdict}")
    if new_entries:
        print(
            f"note: {len(new_entries)} new entr"
            f"{'y' if len(new_entries) == 1 else 'ies'} without a "
            "baseline (not gated); refresh the baseline to start "
            "tracking them"
        )
    if stale_entries:
        print(
            f"note: {len(stale_entries)} stale entr"
            f"{'y' if len(stale_entries) == 1 else 'ies'} only in the "
            "baseline; prune the baseline (or restore the bench) to "
            "clear the verdict"
        )

    for name, b, c in compare_counters(base, cand):
        warnings.append(
            f"deterministic counter '{name}' drifted: {b} -> {c} "
            "(the tree now does different work)"
        )

    print()
    for message in warnings:
        print(f"warning: {message}")
    print(
        f"{len(regressions)} regression(s), {len(improvements)} "
        f"improvement(s), {len(new_entries)} new, "
        f"{len(stale_entries)} stale, {len(warnings)} "
        f"warning(s) [threshold {args.threshold}x, min {args.min_ms} ms]"
    )
    if regressions and not args.warn_only:
        return 1
    if regressions:
        print("warn-only mode: exiting 0 despite regressions")
    if stale_entries and args.strict:
        print("strict mode: exiting 2 for stale baseline entries")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
