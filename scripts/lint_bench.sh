#!/usr/bin/env bash
# aiwc-lint timing guard: full-tree cold and warm runs against the
# checked-in budget. The lock-set and lock-order layers (v3) must not
# quietly erode the "fast enough to run on every save" property the
# incremental cache bought in v2, so this script *warns* — never fails
# — when either run exceeds 2x the recorded v2 numbers (cold 0.06 s,
# warm 0.02 s on the CI runner class). Treat a warning as a prompt to
# profile, not a gate: wall time on shared runners is noisy.
#
# Usage:
#   scripts/lint_bench.sh [--build-dir DIR]
#
# Prints one line per run (cold = empty cache, warm = second run over
# the same cache) plus a LINT-BENCH-WARN line when over budget.
# Always exits 0 unless the tool itself cannot be built or run.
set -u

cd "$(dirname "$0")/.."

build_dir=build
while [ $# -gt 0 ]; do
    case "$1" in
        --build-dir) shift; build_dir=$1 ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

# 2x the v2 baseline (PR 6: cold 0.06 s, warm 0.02 s), in milliseconds.
cold_budget_ms=120
warm_budget_ms=40

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
    echo "lint-bench: configuring $build_dir"
    cmake -B "$build_dir" -S . >/dev/null || exit 2
fi
cmake --build "$build_dir" --target aiwc-lint >/dev/null || exit 2
lint="$build_dir/tools/aiwc-lint/aiwc-lint"

cache=$(mktemp -t aiwc-lint-bench-cache.XXXXXX)
trap 'rm -f "$cache"' EXIT
rm -f "$cache"

# Millisecond wall clock for one full-tree run; findings don't matter
# here (exit 1 is fine), only an internal error (exit 2) aborts.
run_ms() {
    local t0 t1 rc
    t0=$(date +%s%N)
    "$lint" --cache "$cache" >/dev/null 2>&1
    rc=$?
    t1=$(date +%s%N)
    if [ "$rc" -eq 2 ]; then
        echo "lint-bench: aiwc-lint internal error" >&2
        exit 2
    fi
    echo $(( (t1 - t0) / 1000000 ))
}

cold_ms=$(run_ms)   # cache file absent: every file analyzed
warm_ms=$(run_ms)   # second run: everything served from the cache

echo "lint-bench: cold ${cold_ms} ms (budget ${cold_budget_ms} ms)"
echo "lint-bench: warm ${warm_ms} ms (budget ${warm_budget_ms} ms)"

if [ "$cold_ms" -gt "$cold_budget_ms" ]; then
    echo "LINT-BENCH-WARN: cold run ${cold_ms} ms exceeds 2x the v2" \
         "baseline (${cold_budget_ms} ms) — profile before it ratchets"
fi
if [ "$warm_ms" -gt "$warm_budget_ms" ]; then
    echo "LINT-BENCH-WARN: warm run ${warm_ms} ms exceeds 2x the v2" \
         "baseline (${warm_budget_ms} ms) — the cache path regressed"
fi
exit 0
